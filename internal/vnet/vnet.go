// Package vnet is the virtual environment of the RF-controller: the virtual
// machines that mirror the physical switches (Fig. 1 of the paper, VM-A …
// VM-D). Each VM models what an LXC container running Quagga provides in
// RouteFlow — a boot delay, one network interface per switch port, an IP
// stack that answers ARP and ICMP, slow-path IP forwarding out of the VM's
// RIB, and the routing control platform itself (package quagga: zebra +
// ospfd built from generated configuration files).
//
// A VM is transport-agnostic: the RouteFlow proxy injects frames punted
// from the physical switch with Inject and receives the VM's own frames via
// the OnTransmit hook, exactly mirroring the rf-proxy data path.
package vnet

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"routeflow/internal/bgp"
	"routeflow/internal/clock"
	"routeflow/internal/pkt"
	"routeflow/internal/quagga"
	"routeflow/internal/rib"
)

// State is the VM lifecycle state; the paper's GUI shows a switch red until
// its VM exists and is configured, then green.
type State int

// VM states.
const (
	StateBooting State = iota
	StateUp
	StateDestroyed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBooting:
		return "booting"
	case StateUp:
		return "up"
	case StateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MAC returns the deterministic MAC of a VM interface; the high bit of the
// 40-bit local identifier separates the VM MAC space from emulated physical
// ports.
func MAC(dpid uint64, port uint16) pkt.MAC {
	return pkt.LocalMAC(1<<39 | (dpid&0xffffff)<<16 | uint64(port))
}

// IfaceName returns the conventional interface name for a switch port.
func IfaceName(port uint16) string { return fmt.Sprintf("eth%d", port) }

// Config configures a VM.
type Config struct {
	DPID     uint64
	Ports    int
	RouterID netip.Addr
	Clock    clock.Clock
	// BootDelay models VM creation/boot (LXC clone + daemon start). The
	// paper's automatic path pays seconds here instead of the manual path's
	// minutes.
	BootDelay time.Duration
	// Timers are passed to the routing daemons.
	Timers quagga.Timers
	// ASN, when non-zero, places the VM's switch in that autonomous system:
	// the router runs a bgpd speaker next to ospfd (redistributing connected
	// and OSPF routes) and carries a loopback on its router ID for iBGP
	// peering. Zero keeps the flat single-domain behaviour.
	ASN uint32
}

// HostLearned reports a (IP, MAC) binding learned by the VM's ARP on a
// connected subnet — the trigger for the RF-server's host (/32) flows.
type HostLearned struct {
	Port uint16
	IP   netip.Addr
	MAC  pkt.MAC
}

// VM is one virtual machine.
type VM struct {
	dpid uint64
	name string
	clk  clock.Clock

	mu         sync.Mutex
	state      State
	router     *quagga.Router
	ifaces     map[uint16]*vmIface
	byName     map[string]*vmIface // name → iface index for the per-packet route path
	pendingOps []func()            // configuration arriving while booting
	bootTimer  clock.Timer

	// cfgMu serializes router (re)configuration: boot-time pending ops run
	// in the boot goroutine while the RPC server applies new configuration
	// concurrently; interleaved Detach/Attach on one interface would leave
	// the routing daemons silently inconsistent (an attached interface
	// missing from OSPF — a dead adjacency forever).
	cfgMu sync.Mutex

	onTransmit func(port uint16, frame []byte)
	onFIB      func(rib.Event)
	onHost     func(HostLearned)
	onReady    func()

	ipID   uint16
	bgpSeq uint32
}

type vmIface struct {
	port    uint16
	name    string
	mac     pkt.MAC
	addr    netip.Prefix // zero until configured
	passive bool         // OSPF-passive (eBGP border interface)

	arp     map[netip.Addr]pkt.MAC
	pending map[netip.Addr][][]byte // frames awaiting ARP, keyed by next hop
}

// New creates a VM; it transitions to StateUp after BootDelay.
func New(cfg Config) (*VM, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("vnet: VM for %016x needs at least one port", cfg.DPID)
	}
	if !cfg.RouterID.Is4() {
		return nil, fmt.Errorf("vnet: VM for %016x needs an IPv4 router ID", cfg.DPID)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	name := fmt.Sprintf("vm-%016x", cfg.DPID)
	qc := &quagga.Config{
		Hostname: name,
		RouterID: cfg.RouterID,
	}
	if cfg.ASN != 0 {
		// The BGP stanza mirrors what the paper's RPC server would write to
		// bgpd.conf: the AS plus IGP redistribution; neighbors are added as
		// border links and same-AS VMs are discovered.
		qc.BGP = &quagga.BGPConfig{
			ASN:          cfg.ASN,
			Redistribute: []string{"connected", "ospf"},
		}
	}
	router, err := quagga.NewRouter(qc, cfg.Clock, cfg.Timers)
	if err != nil {
		return nil, err
	}
	vm := &VM{
		dpid:   cfg.DPID,
		name:   name,
		clk:    cfg.Clock,
		state:  StateBooting,
		router: router,
		ifaces: make(map[uint16]*vmIface),
		byName: make(map[string]*vmIface),
	}
	for p := 1; p <= cfg.Ports; p++ {
		port := uint16(p)
		ifc := &vmIface{
			port: port, name: IfaceName(port), mac: MAC(cfg.DPID, port),
			arp:     make(map[netip.Addr]pkt.MAC),
			pending: make(map[netip.Addr][][]byte),
		}
		vm.ifaces[port] = ifc
		vm.byName[ifc.name] = ifc
	}
	router.SetBGPTransport(vm.sendBGPMessage)
	vm.bootTimer = cfg.Clock.NewTimer(cfg.BootDelay)
	go vm.bootWait()
	return vm, nil
}

func (vm *VM) bootWait() {
	<-vm.bootTimer.C()
	vm.mu.Lock()
	if vm.state != StateBooting {
		vm.mu.Unlock()
		return
	}
	vm.state = StateUp
	ops := vm.pendingOps
	vm.pendingOps = nil
	ready := vm.onReady
	vm.mu.Unlock()
	vm.router.Start()
	for _, op := range ops {
		op()
	}
	if ready != nil {
		ready()
	}
}

// DPID returns the mirrored switch's datapath ID.
func (vm *VM) DPID() uint64 { return vm.dpid }

// Name returns the VM name.
func (vm *VM) Name() string { return vm.name }

// State returns the lifecycle state.
func (vm *VM) State() State {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.state
}

// Ports returns the number of interfaces. It starts at the announced port
// count and grows when configuration names a port beyond it (interfaces are
// created on demand, so the SwitchUp port *count* is a sizing hint, not a
// contract on port *numbers*).
func (vm *VM) Ports() int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return len(vm.ifaces)
}

// Router exposes the VM's routing control platform.
func (vm *VM) Router() *quagga.Router { return vm.router }

// RIB exposes the VM's routing table.
func (vm *VM) RIB() *rib.RIB { return vm.router.RIB() }

// OnTransmit installs the frame sink (the rf-proxy's packet-out path).
func (vm *VM) OnTransmit(f func(port uint16, frame []byte)) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.onTransmit = f
}

// OnFIB installs the FIB-change hook (the rf-server's flow translation).
func (vm *VM) OnFIB(f func(rib.Event)) {
	vm.router.RIB().Watch(func(ev rib.Event) { f(ev) })
}

// OnHostLearned installs the host-binding hook.
func (vm *VM) OnHostLearned(f func(HostLearned)) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.onHost = f
}

// OnReady installs a callback fired when the VM finishes booting.
func (vm *VM) OnReady(f func()) {
	vm.mu.Lock()
	if vm.state == StateUp {
		vm.mu.Unlock()
		f()
		return
	}
	vm.onReady = f
	vm.mu.Unlock()
}

// Destroy tears the VM down.
func (vm *VM) Destroy() {
	vm.mu.Lock()
	if vm.state == StateDestroyed {
		vm.mu.Unlock()
		return
	}
	prev := vm.state
	vm.state = StateDestroyed
	vm.bootTimer.Stop()
	vm.mu.Unlock()
	if prev == StateUp {
		vm.router.Stop()
	}
}

// ConfigureInterface assigns an address to the interface mirroring a switch
// port and enables OSPF on it (the link-up half of the RPC server's work).
// Calls while booting are queued and applied when the VM comes up.
//
// The call is idempotent and convergent, as a reconciled apply path must
// be: re-announcing the current address is a no-op, announcing a different
// address reconfigures the interface, and naming a port the VM does not
// have yet grows a fresh interface on demand (the announced port count is a
// hint, not a bound on port numbers).
func (vm *VM) ConfigureInterface(port uint16, addr netip.Prefix, cost uint16, ospfNetwork netip.Prefix) error {
	return vm.configureInterface(port, addr, cost, ospfNetwork, false)
}

// ConfigureBorderInterface is ConfigureInterface for an eBGP border link:
// the interface is addressed but OSPF-passive — no adjacency forms across
// the domain boundary, no network statement is added, and routing across
// the link is bgpd's job (add the neighbor with the Router's
// AddBGPNeighbor). Idempotent and convergent like ConfigureInterface.
func (vm *VM) ConfigureBorderInterface(port uint16, addr netip.Prefix, cost uint16) error {
	return vm.configureInterface(port, addr, cost, netip.Prefix{}, true)
}

func (vm *VM) configureInterface(port uint16, addr netip.Prefix, cost uint16, ospfNetwork netip.Prefix, passive bool) error {
	if port == 0 {
		return fmt.Errorf("vnet: %s: port numbers are 1-based", vm.name)
	}
	vm.mu.Lock()
	if vm.state == StateDestroyed {
		vm.mu.Unlock()
		return fmt.Errorf("vnet: %s is %v", vm.name, StateDestroyed)
	}
	ifc, ok := vm.ifaces[port]
	if !ok {
		ifc = &vmIface{
			port: port, name: IfaceName(port), mac: MAC(vm.dpid, port),
			arp:     make(map[netip.Addr]pkt.MAC),
			pending: make(map[netip.Addr][][]byte),
		}
		vm.ifaces[port] = ifc
		vm.byName[ifc.name] = ifc
	}
	if ifc.addr == addr && ifc.passive == passive &&
		(vm.state == StateBooting || vm.router.Attached(ifc.name)) {
		vm.mu.Unlock()
		return nil // level-triggered re-apply: already converged (or queued)
	}
	if ifc.addr.IsValid() {
		// Readdressing: stale neighbour state dies with the old subnet.
		ifc.arp = make(map[netip.Addr]pkt.MAC)
		ifc.pending = make(map[netip.Addr][][]byte)
	}
	ifc.addr = addr
	ifc.passive = passive
	if vm.state == StateBooting {
		vm.pendingOps = append(vm.pendingOps, func() {
			// Self-cancel if a later declaration superseded this one while
			// the VM was still booting: only the current address applies.
			vm.mu.Lock()
			cur, curPassive := ifc.addr, ifc.passive
			vm.mu.Unlock()
			if cur == addr && curPassive == passive {
				vm.applyInterface(ifc, addr, cost, ospfNetwork, passive)
			}
		})
		vm.mu.Unlock()
		return nil
	}
	vm.mu.Unlock()
	vm.applyInterface(ifc, addr, cost, ospfNetwork, passive)
	return nil
}

func (vm *VM) applyInterface(ifc *vmIface, addr netip.Prefix, cost uint16, ospfNetwork netip.Prefix, passive bool) {
	vm.cfgMu.Lock()
	defer vm.cfgMu.Unlock()
	// Detach any previous incarnation so a re-apply converges to the new
	// address instead of erroring on the old attachment (no-op when the
	// interface was never attached).
	vm.router.Detach(ifc.name)
	if ospfNetwork.IsValid() {
		vm.router.AddNetwork(ospfNetwork)
	}
	if err := vm.router.AddInterfaceConfig(quagga.InterfaceConfig{
		Name: ifc.name, Address: addr, Cost: cost, Passive: passive,
	}); err != nil {
		return
	}
	port := ifc.port
	_, _ = vm.router.Attach(ifc.name, func(dst netip.Addr, payload []byte) {
		vm.sendOSPF(port, dst, payload)
	})
}

// DeconfigureInterface reverses ConfigureInterface (link-down).
func (vm *VM) DeconfigureInterface(port uint16) {
	vm.mu.Lock()
	ifc, ok := vm.ifaces[port]
	if !ok || !ifc.addr.IsValid() {
		vm.mu.Unlock()
		return
	}
	name := ifc.name
	ifc.addr = netip.Prefix{}
	ifc.passive = false
	ifc.arp = make(map[netip.Addr]pkt.MAC)
	ifc.pending = make(map[netip.Addr][][]byte)
	vm.mu.Unlock()
	vm.cfgMu.Lock()
	vm.router.Detach(name)
	vm.cfgMu.Unlock()
}

// InterfaceAddr returns the address assigned to a port's interface.
func (vm *VM) InterfaceAddr(port uint16) (netip.Prefix, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	ifc, ok := vm.ifaces[port]
	if !ok || !ifc.addr.IsValid() {
		return netip.Prefix{}, false
	}
	return ifc.addr, true
}

// InterfaceMAC returns the MAC of a port's interface.
func (vm *VM) InterfaceMAC(port uint16) (pkt.MAC, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	ifc, ok := vm.ifaces[port]
	if !ok {
		return pkt.MAC{}, false
	}
	return ifc.mac, true
}

// ConfiguredPorts lists ports with addressed interfaces.
func (vm *VM) ConfiguredPorts() []uint16 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	var out []uint16
	for p, ifc := range vm.ifaces {
		if ifc.addr.IsValid() {
			out = append(out, p)
		}
	}
	return out
}

// LookupARP consults the interface ARP cache.
func (vm *VM) LookupARP(port uint16, ip netip.Addr) (pkt.MAC, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	ifc, ok := vm.ifaces[port]
	if !ok {
		return pkt.MAC{}, false
	}
	mac, ok := ifc.arp[ip]
	return mac, ok
}

// transmit hands a frame to the rf-proxy.
func (vm *VM) transmit(port uint16, frame []byte) {
	vm.mu.Lock()
	f := vm.onTransmit
	vm.mu.Unlock()
	if f != nil {
		f(port, frame)
	}
}

// sendOSPF wraps an OSPF payload in IP and Ethernet. All OSPF traffic uses
// the AllSPFRouters multicast MAC: the links are point-to-point, so the
// single peer receives it either way.
func (vm *VM) sendOSPF(port uint16, dst netip.Addr, payload []byte) {
	vm.mu.Lock()
	ifc, ok := vm.ifaces[port]
	if !ok || !ifc.addr.IsValid() || vm.state != StateUp {
		vm.mu.Unlock()
		return
	}
	src := ifc.addr.Addr()
	mac := ifc.mac
	vm.ipID++
	id := vm.ipID
	vm.mu.Unlock()
	ip := &pkt.IPv4{ID: id, TTL: 1, Proto: pkt.ProtoOSPF, Src: src, Dst: dst, Payload: payload}
	frame := &pkt.Frame{
		Dst:     pkt.MAC{0x01, 0x00, 0x5e, 0x00, 0x00, 0x05}, // 224.0.0.5
		Src:     mac,
		Type:    pkt.EtherTypeIPv4,
		Payload: ip.Marshal(),
	}
	vm.transmit(port, frame.Marshal())
}

// sendBGPMessage carries one bgpd message onto the TCP-like channel: the
// payload rides a single port-179 segment inside a unicast IP packet, which
// the VM originates through its own RIB — eBGP messages cross the border
// link directly, iBGP messages are routed hop by hop toward the peer's
// loopback like any other traffic.
func (vm *VM) sendBGPMessage(src, dst netip.Addr, payload []byte) {
	vm.mu.Lock()
	if vm.state != StateUp {
		vm.mu.Unlock()
		return
	}
	vm.ipID++
	id := vm.ipID
	vm.bgpSeq++
	seq := vm.bgpSeq
	vm.mu.Unlock()
	seg := &pkt.TCP{SrcPort: bgp.Port, DstPort: bgp.Port, Seq: seq,
		Flags: pkt.TCPPsh | pkt.TCPAck, Window: 0xffff, Payload: payload}
	vm.originate(&pkt.IPv4{ID: id, TTL: 64, Proto: pkt.ProtoTCP,
		Src: src, Dst: dst, Payload: seg.Marshal(src, dst)})
}

// originate routes a self-generated IP packet out of the VM: RIB lookup for
// the egress interface, ARP resolution (queueing behind an ARP request like
// the transit path) and transmission.
func (vm *VM) originate(p *pkt.IPv4) {
	rt, ok := vm.RIB().Lookup(p.Dst)
	if !ok {
		return
	}
	egress, ok := vm.ifaceByName(rt.Iface)
	if !ok {
		return
	}
	hop := p.Dst
	if rt.NextHop.IsValid() {
		hop = rt.NextHop
	}
	frame := (&pkt.Frame{Src: egress.mac, Type: pkt.EtherTypeIPv4,
		Payload: p.Marshal()}).Marshal()
	// The frame is freshly marshalled and owned here, so queueing behind ARP
	// retains it as-is.
	mac, ok := vm.resolveNextHop(egress, hop, func() []byte { return frame })
	if !ok {
		return
	}
	copy(frame[0:6], mac[:])
	vm.transmit(egress.port, frame)
}

// resolveNextHop returns the MAC for hop on egress. On an ARP miss it queues
// queued() — which must return a frame safe to retain until ARP answers
// (forwardResolved patches its destination MAC and flushes it) — behind a
// broadcast ARP request and reports ok=false. Shared by the transit path
// (route) and the self-originated path (originate).
func (vm *VM) resolveNextHop(egress *vmIface, hop netip.Addr, queued func() []byte) (pkt.MAC, bool) {
	vm.mu.Lock()
	if mac, ok := egress.arp[hop]; ok {
		vm.mu.Unlock()
		return mac, true
	}
	if q := egress.pending[hop]; len(q) < maxPendingPerHop {
		egress.pending[hop] = append(q, queued())
	}
	srcAddr := egress.addr
	srcMAC := egress.mac
	vm.mu.Unlock()
	if srcAddr.IsValid() {
		req := pkt.NewARPRequest(srcMAC, srcAddr.Addr(), hop)
		out := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: srcMAC,
			Type: pkt.EtherTypeARP, Payload: req.Marshal()}
		vm.transmit(egress.port, out.Marshal())
	}
	return pkt.MAC{}, false
}

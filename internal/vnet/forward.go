package vnet

import (
	"net/netip"

	"routeflow/internal/bgp"
	"routeflow/internal/pkt"
)

// maxPendingPerHop bounds frames queued while ARP resolves one next hop.
const maxPendingPerHop = 64

// Inject delivers a frame punted from the physical switch into the VM
// interface mirroring the ingress port — the rf-proxy's upward data path.
// Inject takes ownership of frame permanently: the routed slow path
// decrements TTL and rewrites the Ethernet addresses in place instead of
// re-marshalling the packet, and the mutated slice may be retained past
// the call (forwarded by reference into the control channel's send queue).
// Callers must not reuse or recycle the buffer after Inject returns.
func (vm *VM) Inject(port uint16, frame []byte) {
	vm.mu.Lock()
	ifc, ok := vm.ifaces[port]
	up := vm.state == StateUp
	vm.mu.Unlock()
	if !ok || !up {
		return
	}
	vm.inject(ifc, frame, nil)
}

// InjectBatch is Inject for a burst of frames punted from one ingress port.
// Consecutive transit packets toward the same destination reuse a single
// RIB lookup and next-hop resolution — the slow path's analogue of the
// switch dataplane's run detection. The cached decision lives only for the
// duration of the burst, so a routing change lands at the next burst
// boundary at the latest. Ownership matches Inject: every frame is owned by
// the VM permanently once passed in.
func (vm *VM) InjectBatch(port uint16, frames [][]byte) {
	vm.mu.Lock()
	ifc, ok := vm.ifaces[port]
	up := vm.state == StateUp
	vm.mu.Unlock()
	if !ok || !up {
		return
	}
	var dec routeDecision
	for _, frame := range frames {
		vm.inject(ifc, frame, &dec)
	}
}

func (vm *VM) inject(ifc *vmIface, frame []byte, dec *routeDecision) {
	var f pkt.Frame
	if err := pkt.DecodeFrameInto(&f, frame); err != nil {
		return
	}
	switch f.Type {
	case pkt.EtherTypeARP:
		vm.handleARP(ifc, &f)
	case pkt.EtherTypeIPv4:
		vm.handleIPv4(ifc, &f, frame, dec)
	}
}

func (vm *VM) handleARP(ifc *vmIface, f *pkt.Frame) {
	a, err := pkt.DecodeARP(f.Payload)
	if err != nil {
		return
	}
	vm.learnARP(ifc, a.SenderIP, a.SenderHW)
	vm.mu.Lock()
	addr := ifc.addr
	mac := ifc.mac
	vm.mu.Unlock()
	if !addr.IsValid() {
		return
	}
	if a.Op == pkt.ARPRequest && a.TargetIP == addr.Addr() {
		rep := a.Reply(mac, addr.Addr())
		out := &pkt.Frame{Dst: a.SenderHW, Src: mac, Type: pkt.EtherTypeARP,
			Payload: rep.Marshal()}
		vm.transmit(ifc.port, out.Marshal())
	}
}

// learnARP records a binding, flushes queued frames, and publishes the
// host-learned event when the address is on the interface subnet.
func (vm *VM) learnARP(ifc *vmIface, ip netip.Addr, mac pkt.MAC) {
	if !ip.Is4() || mac.IsZero() {
		return
	}
	vm.mu.Lock()
	_, known := ifc.arp[ip]
	ifc.arp[ip] = mac
	queued := ifc.pending[ip]
	delete(ifc.pending, ip)
	onLink := ifc.addr.IsValid() && ifc.addr.Contains(ip)
	hostCb := vm.onHost
	vm.mu.Unlock()

	for _, frame := range queued {
		vm.forwardResolved(ifc, frame, mac)
	}
	if !known && onLink && hostCb != nil {
		hostCb(HostLearned{Port: ifc.port, IP: ip, MAC: mac})
	}
}

func (vm *VM) handleIPv4(ifc *vmIface, f *pkt.Frame, frame []byte, dec *routeDecision) {
	ip, err := pkt.DecodeIPv4(f.Payload)
	if err != nil {
		return
	}
	vm.mu.Lock()
	addr := ifc.addr
	vm.mu.Unlock()

	// OSPF rides multicast or our own address.
	if ip.Proto == pkt.ProtoOSPF {
		vm.deliverOSPF(ifc, ip)
		return
	}
	// BGP sessions terminate on any local address — border interfaces for
	// eBGP, the loopback for iBGP — not just the ingress interface.
	if ip.Proto == pkt.ProtoTCP && vm.router.IsLocalAddr(ip.Dst) {
		vm.deliverTCP(ip)
		return
	}
	if addr.IsValid() && ip.Dst == addr.Addr() {
		// For us: ICMP echo is the only local service.
		if ip.Proto == pkt.ProtoICMP {
			vm.answerEcho(ifc, f, ip)
		}
		return
	}
	// Transit: the VM routes it (the punted slow path a Quagga VM's kernel
	// would take).
	vm.route(f, ip, frame, dec)
}

// deliverTCP terminates a locally addressed TCP segment: port 179 goes to
// bgpd; anything else is dropped (no other local TCP service exists).
func (vm *VM) deliverTCP(ip *pkt.IPv4) {
	var seg pkt.TCP
	if err := pkt.DecodeTCPInto(&seg, ip.Payload, ip.Src, ip.Dst); err != nil {
		return
	}
	if seg.DstPort != bgp.Port {
		return
	}
	vm.router.DeliverBGP(ip.Src, seg.Payload)
}

func (vm *VM) deliverOSPF(ifc *vmIface, ip *pkt.IPv4) {
	name := ifc.name
	// Find the attached OSPF interface through the router.
	ospfIfc := vm.router.OSPFInterface(name)
	if ospfIfc != nil {
		ospfIfc.Deliver(ip.Src, ip.Payload)
	}
}

func (vm *VM) answerEcho(ifc *vmIface, f *pkt.Frame, ip *pkt.IPv4) {
	m, err := pkt.DecodeICMP(ip.Payload)
	if err != nil || m.Type != pkt.ICMPEchoRequest {
		return
	}
	vm.mu.Lock()
	mac := ifc.mac
	src := ifc.addr.Addr()
	vm.ipID++
	id := vm.ipID
	vm.mu.Unlock()
	out := &pkt.IPv4{ID: id, TTL: 64, Proto: pkt.ProtoICMP, Src: src, Dst: ip.Src,
		Payload: m.EchoReply().Marshal()}
	frame := &pkt.Frame{Dst: f.Src, Src: mac, Type: pkt.EtherTypeIPv4,
		Payload: out.Marshal()}
	vm.transmit(ifc.port, frame.Marshal())
}

// routeDecision caches one fully resolved forwarding decision within a
// burst: destination → (egress port, source and next-hop MACs). Valid only
// while ok is set and only for the burst it was filled in.
type routeDecision struct {
	dst    netip.Addr
	port   uint16
	srcMAC pkt.MAC
	dstMAC pkt.MAC
	ok     bool
}

// route performs slow-path IP forwarding using the VM's RIB. The hop is
// executed in place on frame: TTL decremented with an RFC 1624 incremental
// checksum update and the Ethernet addresses overwritten, instead of the
// decode → re-marshal round trip per hop this path used to pay. A non-nil
// dec caches the resolved decision so later packets of the same burst
// toward the same destination skip the RIB and ARP work entirely.
func (vm *VM) route(f *pkt.Frame, ip *pkt.IPv4, frame []byte, dec *routeDecision) {
	if ip.TTL <= 1 {
		return // expired; a full router would send ICMP time-exceeded
	}
	if dec != nil && dec.ok && dec.dst == ip.Dst {
		// f.Payload aliases frame, so this patches the frame bytes directly.
		if !pkt.DecrementTTL(f.Payload) {
			return
		}
		copy(frame[6:12], dec.srcMAC[:])
		copy(frame[0:6], dec.dstMAC[:])
		vm.transmit(dec.port, frame)
		return
	}
	rt, ok := vm.RIB().Lookup(ip.Dst)
	if !ok {
		return
	}
	egress, ok := vm.ifaceByName(rt.Iface)
	if !ok {
		return
	}
	// f.Payload aliases frame, so this patches the frame bytes directly.
	if !pkt.DecrementTTL(f.Payload) {
		return
	}
	copy(frame[6:12], egress.mac[:])

	hop := ip.Dst
	if rt.NextHop.IsValid() {
		hop = rt.NextHop
	}
	// Queue a copy on ARP miss: the punted frame may alias a buffer the
	// control channel reuses, so only a copy is safe to retain until ARP
	// answers.
	mac, ok := vm.resolveNextHop(egress, hop, func() []byte {
		return append([]byte(nil), frame...)
	})
	if !ok {
		return
	}
	copy(frame[0:6], mac[:])
	if dec != nil {
		*dec = routeDecision{dst: ip.Dst, port: egress.port, srcMAC: egress.mac, dstMAC: mac, ok: true}
	}
	vm.transmit(egress.port, frame)
}

func (vm *VM) forwardResolved(ifc *vmIface, frame []byte, mac pkt.MAC) {
	if len(frame) < pkt.EthernetHeaderLen {
		return
	}
	copy(frame[0:6], mac[:])
	vm.transmit(ifc.port, frame)
}

func (vm *VM) ifaceByName(name string) (*vmIface, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	ifc, ok := vm.byName[name]
	return ifc, ok
}

// NextHopMAC computes the deterministic MAC of a peer VM interface — the
// RF-server uses this when translating routes whose next hop is another
// VM's interface address.
func NextHopMAC(dpid uint64, port uint16) pkt.MAC { return MAC(dpid, port) }

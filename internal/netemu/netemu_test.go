package netemu

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/pkt"
)

func newPair(t *testing.T) (*Network, *Endpoint, *Endpoint) {
	t.Helper()
	n := NewNetwork(clock.System())
	t.Cleanup(n.Close)
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b",
		MACA: pkt.LocalMAC(1), MACB: pkt.LocalMAC(2)})
	return n, a, b
}

func TestCableDelivers(t *testing.T) {
	_, a, b := newPair(t)
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { got <- append([]byte(nil), f...) })
	if !a.Send([]byte("frame")) {
		t.Fatal("send failed")
	}
	select {
	case f := <-got:
		if string(f) != "frame" {
			t.Fatalf("got %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
}

func TestCableInOrderDelivery(t *testing.T) {
	_, a, b := newPair(t)
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	b.SetReceiver(func(f []byte) {
		mu.Lock()
		got = append(got, f[0])
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		if !a.Send([]byte{byte(i)}) {
			t.Fatalf("send %d failed", i)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("not all frames arrived")
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("frame %d out of order: %d", i, v)
		}
	}
}

func TestCableSendCopiesBuffer(t *testing.T) {
	_, a, b := newPair(t)
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { got <- append([]byte(nil), f...) })
	buf := []byte("orig")
	a.Send(buf)
	buf[0] = 'X' // mutate after send
	f := <-got
	if string(f) != "orig" {
		t.Fatalf("send did not copy: %q", f)
	}
}

func TestLinkDownDropsAndNotifies(t *testing.T) {
	_, a, b := newPair(t)
	var notified atomic.Int32
	a.OnLinkState(func(up bool) {
		if !up {
			notified.Add(1)
		}
	})
	b.OnLinkState(func(up bool) {
		if !up {
			notified.Add(1)
		}
	})
	rx := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { rx <- append([]byte(nil), f...) })

	a.SetLinkUp(false)
	if a.LinkUp() || b.LinkUp() {
		t.Fatal("link should be down on both ends")
	}
	if notified.Load() != 2 {
		t.Fatalf("notifications = %d, want 2", notified.Load())
	}
	if a.Send([]byte("x")) {
		t.Fatal("send on down link succeeded")
	}
	// Raising it again restores delivery.
	a.SetLinkUp(true)
	a.SetLinkUp(true) // idempotent, no extra notifications
	if !a.Send([]byte("y")) {
		t.Fatal("send after link up failed")
	}
	select {
	case <-rx:
	case <-time.After(time.Second):
		t.Fatal("no delivery after link restore")
	}
}

func TestLossRateDropsRoughly(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", LossRate: 0.5, Seed: 42})
	var rx atomic.Int32
	b.SetReceiver(func([]byte) { rx.Add(1) })
	sent := 0
	for i := 0; i < 1000; i++ {
		if a.Send([]byte{1}) {
			sent++
		}
	}
	if sent < 350 || sent > 650 {
		t.Fatalf("with 50%% loss, %d/1000 sends succeeded", sent)
	}
	st := a.Stats()
	if st.TxPackets != uint64(sent) || st.Drops != uint64(1000-sent) {
		t.Fatalf("stats = %+v, sent=%d", st, sent)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", Latency: 30 * time.Millisecond})
	got := make(chan time.Time, 1)
	b.SetReceiver(func([]byte) { got <- time.Now() })
	start := time.Now()
	a.Send([]byte("x"))
	select {
	case at := <-got:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~30ms", d)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestInboxOverflowDrops(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", InboxDepth: 4,
		Latency: 50 * time.Millisecond})
	b.SetReceiver(func([]byte) {})
	dropped := false
	for i := 0; i < 64; i++ {
		if !a.Send([]byte{byte(i)}) {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("tiny inbox with slow consumer never overflowed")
	}
}

func TestTracerSeesTraffic(t *testing.T) {
	n, a, b := newPair(t)
	var events atomic.Int32
	n.SetTracer(func(ev TraceEvent) {
		if ev.From == "a" && ev.To == "b" {
			events.Add(1)
		}
	})
	rx := make(chan struct{}, 1)
	b.SetReceiver(func([]byte) { rx <- struct{}{} })
	a.Send([]byte("x"))
	<-rx
	if events.Load() == 0 {
		t.Fatal("tracer saw nothing")
	}
}

func TestEndpointString(t *testing.T) {
	_, a, _ := newPair(t)
	if a.String() == "" || a.Name() != "a" {
		t.Fatal("identity accessors broken")
	}
}

// buildHostPair wires two hosts back-to-back on one cable (same subnet).
func buildHostPair(t *testing.T) (*Host, *Host) {
	t.Helper()
	n := NewNetwork(clock.System())
	t.Cleanup(n.Close)
	a, b := n.NewCable(CableOpts{NameA: "h1", NameB: "h2",
		MACA: pkt.LocalMAC(0xA), MACB: pkt.LocalMAC(0xB)})
	h1, err := NewHost(HostConfig{Name: "h1",
		Addr: netip.MustParsePrefix("10.0.0.1/24")}, a, n.Clock())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHost(HostConfig{Name: "h2",
		Addr: netip.MustParsePrefix("10.0.0.2/24")}, b, n.Clock())
	if err != nil {
		t.Fatal(err)
	}
	return h1, h2
}

func TestHostARPAndUDP(t *testing.T) {
	h1, h2 := buildHostPair(t)
	got := make(chan string, 1)
	h2.BindUDP(9000, func(src netip.Addr, srcPort uint16, payload []byte) {
		if src == h1.Addr() && srcPort == 1234 {
			got <- string(payload)
		}
	})
	if err := h1.SendUDP(h2.Addr(), 1234, 9000, []byte("hello-routed-world")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "hello-routed-world" {
			t.Fatalf("payload = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
	// The ARP cache must now be warm on both sides (request learned + reply).
	if _, ok := h1.ARPCacheSnapshot()[h2.Addr()]; !ok {
		t.Fatal("h1 did not cache h2's MAC")
	}
	if _, ok := h2.ARPCacheSnapshot()[h1.Addr()]; !ok {
		t.Fatal("h2 did not learn h1's MAC from the request")
	}
}

func TestHostPing(t *testing.T) {
	h1, h2 := buildHostPair(t)
	d, err := h1.Ping(h2.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Fatalf("rtt = %v", d)
	}
}

func TestHostPingTimeout(t *testing.T) {
	h1, _ := buildHostPair(t)
	// 10.0.0.77 does not exist; ARP will fail first.
	_, err := h1.Ping(netip.MustParseAddr("10.0.0.77"), 100*time.Millisecond)
	if err == nil {
		t.Fatal("ping to ghost host succeeded")
	}
}

func TestHostOffLinkRequiresGateway(t *testing.T) {
	h1, _ := buildHostPair(t)
	err := h1.SendUDP(netip.MustParseAddr("192.168.99.1"), 1, 2, nil)
	if err == nil {
		t.Fatal("off-link send without gateway succeeded")
	}
}

func TestHostUDPUnbind(t *testing.T) {
	h1, h2 := buildHostPair(t)
	var hits atomic.Int32
	h2.BindUDP(7, func(netip.Addr, uint16, []byte) { hits.Add(1) })
	h2.BindUDP(7, nil)                       // unbind
	h1.SendUDP(h2.Addr(), 1, 7, []byte("x")) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
	if hits.Load() != 0 {
		t.Fatal("handler ran after unbind")
	}
}

func TestHostRejectsIPv6(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, _ := n.NewCable(CableOpts{NameA: "x", NameB: "y"})
	_, err := NewHost(HostConfig{Name: "x",
		Addr: netip.MustParsePrefix("fd00::1/64")}, a, n.Clock())
	if err == nil {
		t.Fatal("IPv6 host accepted")
	}
}

func TestHostClosedSendFails(t *testing.T) {
	h1, h2 := buildHostPair(t)
	h1.Close()
	if err := h1.SendUDP(h2.Addr(), 1, 2, nil); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestARPConcurrentResolvers(t *testing.T) {
	h1, h2 := buildHostPair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := h1.Resolve(h2.Addr()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

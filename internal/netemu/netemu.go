// Package netemu emulates the physical network the paper runs on: switches,
// hosts and the cables between them. It replaces the OFELIA testbed's Linux
// network namespaces with in-process endpoints exchanging byte-accurate
// Ethernet frames over cables that can model latency, loss and failure.
// Everything above this layer — OpenFlow switching, discovery, routing — is
// real protocol code; only the physical medium is simulated.
//
// Delivery model: each endpoint has a bounded inbox drained by one goroutine,
// so receivers run concurrently with senders and frames on one cable arrive
// in order. A full inbox drops frames (like a real NIC ring), which keeps the
// system deadlock-free by construction.
package netemu

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/pkt"
)

// DefaultInboxDepth is the per-endpoint receive queue length.
const DefaultInboxDepth = 512

// TraceEvent describes one frame movement for debugging and tests.
type TraceEvent struct {
	From, To string
	Len      int
	Dropped  bool // queue overflow, loss or link down
}

// Tracer receives a copy of every frame event. It must not block.
type Tracer func(TraceEvent)

// Network owns cables and endpoint delivery goroutines.
type Network struct {
	clk    clock.Clock
	tracer atomic.Value // Tracer

	mu     sync.Mutex
	eps    []*Endpoint
	closed bool
}

// NewNetwork returns an empty network using clk for latency modelling.
func NewNetwork(clk clock.Clock) *Network {
	if clk == nil {
		clk = clock.System()
	}
	return &Network{clk: clk}
}

// SetTracer installs a frame tracer (nil clears it).
func (n *Network) SetTracer(t Tracer) {
	n.tracer.Store(t)
}

func (n *Network) trace(ev TraceEvent) {
	if t, _ := n.tracer.Load().(Tracer); t != nil {
		t(ev)
	}
}

// CableOpts configures one cable.
type CableOpts struct {
	NameA, NameB string        // endpoint labels (for tracing)
	MACA, MACB   pkt.MAC       // endpoint hardware addresses
	Latency      time.Duration // one-way delay, applied per frame
	LossRate     float64       // probability per frame, [0,1)
	Seed         int64         // RNG seed for loss decisions
	InboxDepth   int           // defaults to DefaultInboxDepth
}

// frameBuf is a pooled in-flight frame copy. Send fills one from the pool,
// the peer's deliverLoop hands its bytes to the receiver and recycles it —
// steady-state frame delivery allocates nothing (the emulated analogue of a
// NIC ring reusing descriptors).
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// Endpoint is one side of a cable. Owners attach a receiver; Send transmits
// toward the peer.
type Endpoint struct {
	net     *Network
	name    string
	mac     pkt.MAC
	peer    *Endpoint
	inbox   chan *frameBuf
	stop    chan struct{}
	stopped sync.Once

	latency time.Duration
	loss    float64
	rngMu   sync.Mutex
	rng     *rand.Rand

	recvMu  sync.RWMutex
	recv    func([]byte)
	onState func(bool)

	up atomic.Bool // shared link state is the AND of both halves; we keep one flag per cable, see link

	link *linkState

	rxPackets, txPackets atomic.Uint64
	rxBytes, txBytes     atomic.Uint64
	drops                atomic.Uint64
}

// linkState is shared by the two endpoints of one cable.
type linkState struct {
	up atomic.Bool
}

// NewCable creates a cable and returns its two endpoints, initially up.
func (n *Network) NewCable(opts CableOpts) (*Endpoint, *Endpoint) {
	depth := opts.InboxDepth
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	ls := &linkState{}
	ls.up.Store(true)
	mk := func(name string, mac pkt.MAC, seedSalt int64) *Endpoint {
		e := &Endpoint{
			net:     n,
			name:    name,
			mac:     mac,
			inbox:   make(chan *frameBuf, depth),
			stop:    make(chan struct{}),
			latency: opts.Latency,
			loss:    opts.LossRate,
			rng:     rand.New(rand.NewSource(opts.Seed ^ seedSalt)),
			link:    ls,
		}
		go e.deliverLoop()
		return e
	}
	a := mk(opts.NameA, opts.MACA, 0x517e)
	b := mk(opts.NameB, opts.MACB, 0x9e77)
	a.peer, b.peer = b, a
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		a.close()
		b.close()
		panic("netemu: NewCable on closed network")
	}
	n.eps = append(n.eps, a, b)
	return a, b
}

// Name returns the endpoint label.
func (e *Endpoint) Name() string { return e.name }

// MAC returns the endpoint hardware address.
func (e *Endpoint) MAC() pkt.MAC { return e.mac }

// LinkUp reports whether the cable is administratively up.
func (e *Endpoint) LinkUp() bool { return e.link.up.Load() }

// SetReceiver installs the inbound frame handler. Frames arriving with no
// receiver installed are dropped.
//
// Ownership contract (like a kernel packet ring): the frame slice is valid
// only for the duration of the callback and may be mutated by it; it is
// recycled as soon as the callback returns. Receivers that retain the frame
// past the callback must copy it.
func (e *Endpoint) SetReceiver(f func(frame []byte)) {
	e.recvMu.Lock()
	e.recv = f
	e.recvMu.Unlock()
}

// OnLinkState installs a callback fired on SetLinkUp transitions (both
// endpoints of the cable are notified).
func (e *Endpoint) OnLinkState(f func(up bool)) {
	e.recvMu.Lock()
	e.onState = f
	e.recvMu.Unlock()
}

// SetLinkUp raises or cuts the cable; both endpoints observe the change.
func (e *Endpoint) SetLinkUp(up bool) {
	if e.link.up.Swap(up) == up {
		return
	}
	for _, ep := range []*Endpoint{e, e.peer} {
		ep.recvMu.RLock()
		cb := ep.onState
		ep.recvMu.RUnlock()
		if cb != nil {
			cb(up)
		}
	}
}

// Send transmits one frame toward the peer. It never blocks; it reports
// false when the frame was dropped (link down, loss model, or full peer
// inbox). The frame is copied into a pooled buffer, so callers may reuse
// (or have been mutating) their slice.
func (e *Endpoint) Send(frame []byte) bool {
	if !e.link.up.Load() {
		e.drops.Add(1)
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		return false
	}
	if e.loss > 0 {
		e.rngMu.Lock()
		lost := e.rng.Float64() < e.loss
		e.rngMu.Unlock()
		if lost {
			e.drops.Add(1)
			e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
			return false
		}
	}
	fb := framePool.Get().(*frameBuf)
	fb.b = append(fb.b[:0], frame...)
	select {
	case e.peer.inbox <- fb:
		e.txPackets.Add(1)
		e.txBytes.Add(uint64(len(frame)))
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame)})
		return true
	default:
		framePool.Put(fb)
		e.drops.Add(1)
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		return false
	}
}

func (e *Endpoint) deliverLoop() {
	for {
		select {
		case fb := <-e.inbox:
			if e.latency > 0 {
				e.net.clk.Sleep(e.latency)
			}
			e.recvMu.RLock()
			recv := e.recv
			e.recvMu.RUnlock()
			if recv != nil && e.link.up.Load() {
				e.rxPackets.Add(1)
				e.rxBytes.Add(uint64(len(fb.b)))
				recv(fb.b)
			} else {
				e.drops.Add(1)
			}
			framePool.Put(fb)
		case <-e.stop:
			return
		}
	}
}

func (e *Endpoint) close() { e.stopped.Do(func() { close(e.stop) }) }

// Stats is a snapshot of endpoint counters.
type Stats struct {
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	Drops                uint64
}

// Stats returns the endpoint counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		RxPackets: e.rxPackets.Load(), TxPackets: e.txPackets.Load(),
		RxBytes: e.rxBytes.Load(), TxBytes: e.txBytes.Load(),
		Drops: e.drops.Load(),
	}
}

// String describes the endpoint.
func (e *Endpoint) String() string {
	return fmt.Sprintf("ep(%s, %s)", e.name, e.mac)
}

// Clock returns the network's clock (components attached to endpoints share
// it).
func (n *Network) Clock() clock.Clock { return n.clk }

// Close stops all delivery goroutines. Endpoints become inert.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, e := range n.eps {
		e.close()
	}
}

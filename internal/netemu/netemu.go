// Package netemu emulates the physical network the paper runs on: switches,
// hosts and the cables between them. It replaces the OFELIA testbed's Linux
// network namespaces with in-process endpoints exchanging byte-accurate
// Ethernet frames over cables that can model latency, loss and failure.
// Everything above this layer — OpenFlow switching, discovery, routing — is
// real protocol code; only the physical medium is simulated.
//
// Delivery model: each endpoint has a bounded inbox drained by one goroutine,
// so receivers run concurrently with senders and frames on one cable arrive
// in order. A full inbox drops frames (like a real NIC ring), which keeps the
// system deadlock-free by construction. The drain is vectored: the delivery
// goroutine pulls whatever has accumulated (up to MaxBurst) and hands the
// whole burst to a batch receiver in one callback, so receiver-side lock,
// pool and trace overhead is paid per burst instead of per frame.
package netemu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/pkt"
)

// DefaultInboxDepth is the per-endpoint receive queue length.
const DefaultInboxDepth = 512

// MaxBurst bounds how many frames one delivery callback can carry; it also
// bounds how long a batch receiver can hold the delivery goroutine before
// later frames get their latency deadlines re-checked.
const MaxBurst = 64

// TraceEvent describes one frame movement for debugging and tests.
type TraceEvent struct {
	From, To string
	Len      int
	Dropped  bool // queue overflow, loss or link down
}

// Tracer receives a copy of every frame event. It must not block.
type Tracer func(TraceEvent)

// Network owns cables and endpoint delivery goroutines.
type Network struct {
	clk    clock.Clock
	tracer atomic.Value // Tracer

	mu     sync.Mutex
	eps    []*Endpoint
	closed bool
}

// NewNetwork returns an empty network using clk for latency modelling.
func NewNetwork(clk clock.Clock) *Network {
	if clk == nil {
		clk = clock.System()
	}
	return &Network{clk: clk}
}

// SetTracer installs a frame tracer (nil clears it).
func (n *Network) SetTracer(t Tracer) {
	n.tracer.Store(t)
}

func (n *Network) trace(ev TraceEvent) {
	if t, _ := n.tracer.Load().(Tracer); t != nil {
		t(ev)
	}
}

// CableOpts configures one cable.
type CableOpts struct {
	NameA, NameB string        // endpoint labels (for tracing)
	MACA, MACB   pkt.MAC       // endpoint hardware addresses
	Latency      time.Duration // one-way delay, applied per frame
	LossRate     float64       // probability per frame, [0,1)
	Seed         int64         // RNG seed for loss decisions
	InboxDepth   int           // defaults to DefaultInboxDepth
}

// frameBuf is a pooled in-flight frame copy. Send fills one from the pool,
// the peer's deliverLoop hands its bytes to the receiver and recycles it —
// steady-state frame delivery allocates nothing (the emulated analogue of a
// NIC ring reusing descriptors). due is the frame's delivery deadline on a
// latency-modelled cable (zero when the cable has no latency): deadlines are
// stamped at send time, so frames in flight overlap like bits on a real pipe
// instead of queueing one full latency behind each other.
type frameBuf struct {
	b   []byte
	due time.Time
}

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// Endpoint is one side of a cable. Owners attach a receiver; Send transmits
// toward the peer.
type Endpoint struct {
	net     *Network
	name    string
	mac     pkt.MAC
	peer    *Endpoint
	inbox   chan *frameBuf
	stop    chan struct{}
	stopped sync.Once

	latency time.Duration
	loss    float64
	// Loss decisions draw from an atomic-stepped splitmix64 sequence: each
	// draw is one atomic add plus pure arithmetic, so loss-injected cables
	// never serialize concurrent senders behind a shared RNG lock. The
	// sequence is deterministic per seed; only the interleaving of draws
	// across racing senders varies (exactly as it did under the old mutex).
	lossSeed uint64
	lossSeq  atomic.Uint64

	recvMu    sync.RWMutex
	recv      func([]byte)
	recvBatch func([][]byte)
	onState   func(bool)

	up atomic.Bool // shared link state is the AND of both halves; we keep one flag per cable, see link

	link *linkState

	rxPackets, txPackets atomic.Uint64
	rxBytes, txBytes     atomic.Uint64
	drops                atomic.Uint64
}

// linkState is shared by the two endpoints of one cable.
type linkState struct {
	up atomic.Bool
}

// NewCable creates a cable and returns its two endpoints, initially up.
func (n *Network) NewCable(opts CableOpts) (*Endpoint, *Endpoint) {
	depth := opts.InboxDepth
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	ls := &linkState{}
	ls.up.Store(true)
	mk := func(name string, mac pkt.MAC, seedSalt int64) *Endpoint {
		e := &Endpoint{
			net:      n,
			name:     name,
			mac:      mac,
			inbox:    make(chan *frameBuf, depth),
			stop:     make(chan struct{}),
			latency:  opts.Latency,
			loss:     opts.LossRate,
			lossSeed: splitmix64(uint64(opts.Seed ^ seedSalt)),
			link:     ls,
		}
		go e.deliverLoop()
		return e
	}
	a := mk(opts.NameA, opts.MACA, 0x517e)
	b := mk(opts.NameB, opts.MACB, 0x9e77)
	a.peer, b.peer = b, a
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		a.close()
		b.close()
		panic("netemu: NewCable on closed network")
	}
	n.eps = append(n.eps, a, b)
	return a, b
}

// Name returns the endpoint label.
func (e *Endpoint) Name() string { return e.name }

// MAC returns the endpoint hardware address.
func (e *Endpoint) MAC() pkt.MAC { return e.mac }

// LinkUp reports whether the cable is administratively up.
func (e *Endpoint) LinkUp() bool { return e.link.up.Load() }

// SetReceiver installs the inbound frame handler (clearing any batch
// receiver). Frames arriving with no receiver installed are dropped.
//
// Ownership contract (like a kernel packet ring): the frame slice is valid
// only for the duration of the callback and may be mutated by it; it is
// recycled as soon as the callback returns. Receivers that retain the frame
// past the callback must copy it.
func (e *Endpoint) SetReceiver(f func(frame []byte)) {
	e.recvMu.Lock()
	e.recv = f
	e.recvBatch = nil
	e.recvMu.Unlock()
}

// SetBatchReceiver installs a vectored inbound handler (clearing any
// single-frame receiver): the delivery goroutine drains the inbox in bursts
// of up to MaxBurst frames and hands each burst to f in one callback,
// amortizing receiver-side locking and dispatch per burst instead of per
// frame.
//
// Ownership contract, burst form: both the frames slice and every frame in
// it are valid only for the duration of the callback; each frame may be
// mutated in place, and all of them (and the slice itself) are recycled as
// soon as the callback returns. Receivers that retain any frame — or the
// slice — past the callback must copy it.
func (e *Endpoint) SetBatchReceiver(f func(frames [][]byte)) {
	e.recvMu.Lock()
	e.recvBatch = f
	e.recv = nil
	e.recvMu.Unlock()
}

// OnLinkState installs a callback fired on SetLinkUp transitions (both
// endpoints of the cable are notified).
func (e *Endpoint) OnLinkState(f func(up bool)) {
	e.recvMu.Lock()
	e.onState = f
	e.recvMu.Unlock()
}

// SetLinkUp raises or cuts the cable; both endpoints observe the change.
func (e *Endpoint) SetLinkUp(up bool) {
	if e.link.up.Swap(up) == up {
		return
	}
	for _, ep := range []*Endpoint{e, e.peer} {
		ep.recvMu.RLock()
		cb := ep.onState
		ep.recvMu.RUnlock()
		if cb != nil {
			cb(up)
		}
	}
}

// splitmix64 is the mixing function of the SplitMix64 generator; one round
// turns a sequence counter into a uniform 64-bit value, so loss draws need
// no shared generator state beyond an atomic counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lossDrop draws the next loss decision. Lock-free: one atomic add and pure
// arithmetic per draw.
func (e *Endpoint) lossDrop() bool {
	x := splitmix64(e.lossSeed + e.lossSeq.Add(1))
	return float64(x>>11)/(1<<53) < e.loss
}

// Send transmits one frame toward the peer. It never blocks; it reports
// false when the frame was dropped (link down, loss model, or full peer
// inbox). The frame is copied into a pooled buffer, so callers may reuse
// (or have been mutating) their slice.
func (e *Endpoint) Send(frame []byte) bool {
	if !e.link.up.Load() {
		e.drops.Add(1)
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		return false
	}
	if e.loss > 0 && e.lossDrop() {
		e.drops.Add(1)
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		return false
	}
	fb := framePool.Get().(*frameBuf)
	fb.b = append(fb.b[:0], frame...)
	if e.latency > 0 {
		fb.due = e.net.clk.Now().Add(e.latency)
	} else {
		fb.due = time.Time{}
	}
	select {
	case e.peer.inbox <- fb:
		e.txPackets.Add(1)
		e.txBytes.Add(uint64(len(frame)))
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame)})
		return true
	default:
		framePool.Put(fb)
		e.drops.Add(1)
		e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		return false
	}
}

// SendBatch transmits a burst of frames toward the peer in one call,
// paying the link-state check, counter updates and deadline stamp once per
// burst instead of once per frame. Loss decisions remain per frame, so the
// loss model is unchanged. Every frame is copied like Send; the return
// value is the number of frames accepted (link down accepts none, a full
// peer inbox or a loss draw drops individual frames).
func (e *Endpoint) SendBatch(frames [][]byte) int {
	if len(frames) == 0 {
		return 0
	}
	if !e.link.up.Load() {
		e.drops.Add(uint64(len(frames)))
		for _, frame := range frames {
			e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		}
		return 0
	}
	var due time.Time
	if e.latency > 0 {
		due = e.net.clk.Now().Add(e.latency)
	}
	sent, dropped := 0, 0
	var sentBytes uint64
	for _, frame := range frames {
		if e.loss > 0 && e.lossDrop() {
			dropped++
			e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
			continue
		}
		fb := framePool.Get().(*frameBuf)
		fb.b = append(fb.b[:0], frame...)
		fb.due = due
		select {
		case e.peer.inbox <- fb:
			sent++
			sentBytes += uint64(len(frame))
			e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame)})
		default:
			framePool.Put(fb)
			dropped++
			e.net.trace(TraceEvent{From: e.name, To: e.peer.name, Len: len(frame), Dropped: true})
		}
	}
	if sent > 0 {
		e.txPackets.Add(uint64(sent))
		e.txBytes.Add(sentBytes)
	}
	if dropped > 0 {
		e.drops.Add(uint64(dropped))
	}
	return sent
}

// deliverLoop drains the inbox in bursts: one blocking receive, then
// whatever else has accumulated (up to MaxBurst), delivered together. On a
// latency-modelled cable each frame carries its own send-time deadline, so
// the loop waits only for the head frame's deadline and then delivers every
// frame already due — a burst of N frames arrives ~Latency after it was
// sent, not N×Latency later the way a per-frame sleep serialized it.
func (e *Endpoint) deliverLoop() {
	burst := make([]*frameBuf, 0, MaxBurst)
	frames := make([][]byte, 0, MaxBurst)
	for {
		select {
		case fb := <-e.inbox:
			burst = append(burst[:0], fb)
		drain:
			for len(burst) < MaxBurst {
				select {
				case fb2 := <-e.inbox:
					burst = append(burst, fb2)
				default:
					break drain
				}
			}
			for i := 0; i < len(burst); {
				n := len(burst) - i
				if !burst[i].due.IsZero() {
					if d := burst[i].due.Sub(e.net.clk.Now()); d > 0 {
						e.net.clk.Sleep(d)
					}
					// Deliver the prefix already due; frames sent later keep
					// their own deadlines and wait their remaining time on
					// the next pass.
					now := e.net.clk.Now()
					n = 1
					for i+n < len(burst) && !burst[i+n].due.After(now) {
						n++
					}
				}
				e.deliverFrames(burst[i:i+n], &frames)
				i += n
			}
		case <-e.stop:
			return
		}
	}
}

// deliverFrames hands one due burst to the receiver — a single callback for
// batch receivers, per-frame calls otherwise — and recycles the buffers.
func (e *Endpoint) deliverFrames(bufs []*frameBuf, scratch *[][]byte) {
	e.recvMu.RLock()
	recvBatch := e.recvBatch
	recv := e.recv
	e.recvMu.RUnlock()
	if (recvBatch == nil && recv == nil) || !e.link.up.Load() {
		e.drops.Add(uint64(len(bufs)))
	} else {
		var bytes uint64
		for _, fb := range bufs {
			bytes += uint64(len(fb.b))
		}
		e.rxPackets.Add(uint64(len(bufs)))
		e.rxBytes.Add(bytes)
		if recvBatch != nil {
			fs := (*scratch)[:0]
			for _, fb := range bufs {
				fs = append(fs, fb.b)
			}
			*scratch = fs
			recvBatch(fs)
			// Frames must not outlive the callback: drop the aliases before
			// the buffers go back to the pool.
			for i := range fs {
				fs[i] = nil
			}
		} else {
			for _, fb := range bufs {
				recv(fb.b)
			}
		}
	}
	for _, fb := range bufs {
		framePool.Put(fb)
	}
}

func (e *Endpoint) close() { e.stopped.Do(func() { close(e.stop) }) }

// Stats is a snapshot of endpoint counters.
type Stats struct {
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	Drops                uint64
}

// Stats returns the endpoint counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		RxPackets: e.rxPackets.Load(), TxPackets: e.txPackets.Load(),
		RxBytes: e.rxBytes.Load(), TxBytes: e.txBytes.Load(),
		Drops: e.drops.Load(),
	}
}

// String describes the endpoint.
func (e *Endpoint) String() string {
	return fmt.Sprintf("ep(%s, %s)", e.name, e.mac)
}

// Clock returns the network's clock (components attached to endpoints share
// it).
func (n *Network) Clock() clock.Clock { return n.clk }

// Close stops all delivery goroutines. Endpoints become inert.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, e := range n.eps {
		e.close()
	}
}

package netemu

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/pkt"
)

func TestSendBatchDelivers(t *testing.T) {
	_, a, b := newPair(t)
	var mu sync.Mutex
	var got [][]byte
	done := make(chan struct{})
	b.SetBatchReceiver(func(frames [][]byte) {
		mu.Lock()
		for _, f := range frames {
			got = append(got, append([]byte(nil), f...))
		}
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	})
	var batch [][]byte
	for i := 0; i < 100; i++ {
		batch = append(batch, []byte{byte(i), byte(i >> 1)})
	}
	if n := a.SendBatch(batch); n != 100 {
		t.Fatalf("SendBatch accepted %d/100", n)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("not all frames arrived")
	}
	for i, f := range got {
		if !bytes.Equal(f, []byte{byte(i), byte(i >> 1)}) {
			t.Fatalf("frame %d = %v, out of order or corrupted", i, f)
		}
	}
	if st := a.Stats(); st.TxPackets != 100 || st.Drops != 0 {
		t.Fatalf("sender stats = %+v", st)
	}
	if st := b.Stats(); st.RxPackets != 100 {
		t.Fatalf("receiver stats = %+v", st)
	}
}

// TestBatchReceiverCoalesces pins the vectoring behaviour: frames that
// accumulate while the receiver is busy arrive as one burst, not as one
// callback each.
func TestBatchReceiverCoalesces(t *testing.T) {
	_, a, b := newPair(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	bursts := make(chan int, 16)
	b.SetBatchReceiver(func(frames [][]byte) {
		if first.CompareAndSwap(true, false) {
			entered <- struct{}{}
			<-release // hold the delivery goroutine while the inbox fills
		}
		bursts <- len(frames)
	})
	a.Send([]byte{0})
	<-entered
	for i := 1; i < 48; i++ {
		if !a.Send([]byte{byte(i)}) {
			t.Fatalf("send %d failed", i)
		}
	}
	close(release)
	if n := <-bursts; n != 1 {
		t.Fatalf("first burst had %d frames, want 1", n)
	}
	total, calls := 0, 0
	deadline := time.After(2 * time.Second)
	for total < 47 {
		select {
		case n := <-bursts:
			total += n
			calls++
		case <-deadline:
			t.Fatalf("only %d/47 held-back frames arrived", total)
		}
	}
	if calls != 1 {
		t.Fatalf("held-back frames arrived in %d bursts, want 1 coalesced burst", calls)
	}
}

// TestLatencyOverlap pins the head-of-line fix: a burst through a
// latency-modelled cable arrives ~one latency after it was sent, because
// every frame carries its own send-time deadline. Under the old per-frame
// sleep the 8th frame arrived 8×latency late.
func TestLatencyOverlap(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	const lat = 50 * time.Millisecond
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", Latency: lat})
	const frames = 8
	arrived := make(chan time.Time, frames)
	b.SetReceiver(func([]byte) { arrived <- time.Now() })
	start := time.Now()
	for i := 0; i < frames; i++ {
		if !a.Send([]byte{byte(i)}) {
			t.Fatalf("send %d failed", i)
		}
	}
	var last time.Time
	for i := 0; i < frames; i++ {
		select {
		case at := <-arrived:
			last = at
		case <-time.After(2 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
	elapsed := last.Sub(start)
	if elapsed < lat-5*time.Millisecond {
		t.Fatalf("burst arrived after %v, before the %v latency", elapsed, lat)
	}
	if elapsed > 3*lat {
		t.Fatalf("burst took %v, frames are serializing behind each other (old head-of-line behaviour would take %v)",
			elapsed, frames*lat)
	}
}

func TestSendBatchLossAndStats(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", LossRate: 0.5, Seed: 7})
	var rx atomic.Int32
	b.SetBatchReceiver(func(frames [][]byte) { rx.Add(int32(len(frames))) })
	batch := make([][]byte, 100)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	sent := 0
	for i := 0; i < 10; i++ {
		sent += a.SendBatch(batch)
	}
	if sent < 350 || sent > 650 {
		t.Fatalf("with 50%% loss, %d/1000 batched sends succeeded", sent)
	}
	st := a.Stats()
	if st.TxPackets != uint64(sent) || st.Drops != uint64(1000-sent) {
		t.Fatalf("stats = %+v, sent=%d", st, sent)
	}
}

func TestSendBatchLinkDown(t *testing.T) {
	_, a, b := newPair(t)
	b.SetBatchReceiver(func([][]byte) { t.Error("delivery on down link") })
	a.SetLinkUp(false)
	if n := a.SendBatch([][]byte{{1}, {2}}); n != 0 {
		t.Fatalf("down link accepted %d frames", n)
	}
	if st := a.Stats(); st.Drops != 2 {
		t.Fatalf("drops = %d, want 2", st.Drops)
	}
}

// TestLossSequenceDeterministic pins the lock-free RNG contract: the same
// seed produces the same accept/drop sequence.
func TestLossSequenceDeterministic(t *testing.T) {
	pattern := func() string {
		n := NewNetwork(clock.System())
		defer n.Close()
		a, _ := n.NewCable(CableOpts{NameA: "a", NameB: "b", LossRate: 0.3, Seed: 99})
		var s []byte
		for i := 0; i < 64; i++ {
			if a.Send([]byte{1}) {
				s = append(s, '1')
			} else {
				s = append(s, '0')
			}
		}
		return string(s)
	}
	if p1, p2 := pattern(), pattern(); p1 != p2 {
		t.Fatalf("same seed produced different loss sequences:\n%s\n%s", p1, p2)
	}
}

// TestConcurrentSendersRace exercises the lock-free loss path and batched
// inbox from many goroutines at once (meaningful under -race).
func TestConcurrentSendersRace(t *testing.T) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, b := n.NewCable(CableOpts{NameA: "a", NameB: "b", LossRate: 0.1, Seed: 3})
	var rx atomic.Int64
	b.SetBatchReceiver(func(frames [][]byte) { rx.Add(int64(len(frames))) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := [][]byte{{byte(g)}, {byte(g), 1}, {byte(g), 2}}
			for i := 0; i < 200; i++ {
				if i%2 == 0 {
					a.SendBatch(batch)
				} else {
					a.Send(batch[0])
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := a.Stats()
		if rx.Load() == int64(st.TxPackets) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rx=%d never matched tx=%d", rx.Load(), st.TxPackets)
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkCableSend / BenchmarkCableSendBatch measure per-frame cost of the
// two transmit paths; the batch path amortizes link checks, deadline stamps
// and counter updates over the burst.
func BenchmarkCableSend(b *testing.B) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, bb := n.NewCable(CableOpts{NameA: "a", NameB: "b", MACA: pkt.LocalMAC(1), MACB: pkt.LocalMAC(2)})
	bb.SetBatchReceiver(func([][]byte) {})
	frame := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(frame)
	}
}

func BenchmarkCableSendBatch(b *testing.B) {
	n := NewNetwork(clock.System())
	defer n.Close()
	a, bb := n.NewCable(CableOpts{NameA: "a", NameB: "b", MACA: pkt.LocalMAC(1), MACB: pkt.LocalMAC(2)})
	bb.SetBatchReceiver(func([][]byte) {})
	batch := make([][]byte, 32)
	for i := range batch {
		batch[i] = make([]byte, 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		a.SendBatch(batch)
	}
}

package netemu

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/pkt"
)

// Host errors.
var (
	ErrNoRoute    = errors.New("netemu: no route to host")
	ErrARPTimeout = errors.New("netemu: arp resolution timed out")
	ErrClosed     = errors.New("netemu: host closed")
)

// HostConfig configures a Host's network identity and protocol timers.
type HostConfig struct {
	Name    string
	Addr    netip.Prefix // interface address with its subnet
	Gateway netip.Addr   // default gateway (usually the attached VM interface)

	ARPTimeout time.Duration // per-attempt wait, default 1s
	ARPRetries int           // default 3
}

// UDPHandler consumes datagrams delivered to a bound port. The payload is
// valid only for the duration of the call (it aliases the endpoint's pooled
// receive buffer); handlers that retain it must copy.
type UDPHandler func(src netip.Addr, srcPort uint16, payload []byte)

// Host is a minimal end-system IP stack attached to one endpoint: ARP
// (request, reply, cache), ICMP echo, and UDP send/receive. It is the
// traffic source and sink for the paper's video-streaming demo.
type Host struct {
	name string
	mac  pkt.MAC
	addr netip.Prefix
	gw   netip.Addr
	ep   *Endpoint
	clk  clock.Clock

	arpTimeout time.Duration
	arpRetries int

	mu       sync.Mutex
	arpCache map[netip.Addr]pkt.MAC
	arpWait  map[netip.Addr][]chan pkt.MAC
	udpPorts map[uint16]UDPHandler
	pings    map[uint32]chan time.Duration
	pingSeq  uint16
	ipID     uint16
	closed   bool
}

// NewHost attaches a host stack to ep. The endpoint's receiver is taken over
// by the host.
func NewHost(cfg HostConfig, ep *Endpoint, clk clock.Clock) (*Host, error) {
	if !cfg.Addr.Addr().Is4() {
		return nil, fmt.Errorf("netemu: host %s address %v is not IPv4", cfg.Name, cfg.Addr)
	}
	if cfg.ARPTimeout <= 0 {
		cfg.ARPTimeout = time.Second
	}
	if cfg.ARPRetries <= 0 {
		cfg.ARPRetries = 3
	}
	if clk == nil {
		clk = clock.System()
	}
	h := &Host{
		name:       cfg.Name,
		mac:        ep.MAC(),
		addr:       cfg.Addr,
		gw:         cfg.Gateway,
		ep:         ep,
		clk:        clk,
		arpTimeout: cfg.ARPTimeout,
		arpRetries: cfg.ARPRetries,
		arpCache:   make(map[netip.Addr]pkt.MAC),
		arpWait:    make(map[netip.Addr][]chan pkt.MAC),
		udpPorts:   make(map[uint16]UDPHandler),
		pings:      make(map[uint32]chan time.Duration),
	}
	ep.SetReceiver(h.receive)
	return h, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Addr returns the host's interface address.
func (h *Host) Addr() netip.Addr { return h.addr.Addr() }

// MAC returns the host's hardware address.
func (h *Host) MAC() pkt.MAC { return h.mac }

// Close detaches the host; subsequent sends fail.
func (h *Host) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.ep.SetReceiver(nil)
}

// BindUDP installs a handler for datagrams to the given port. A nil handler
// unbinds.
func (h *Host) BindUDP(port uint16, fn UDPHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if fn == nil {
		delete(h.udpPorts, port)
		return
	}
	h.udpPorts[port] = fn
}

// nextHop picks the L2 destination for dst: on-link hosts directly, anything
// else via the gateway.
func (h *Host) nextHop(dst netip.Addr) (netip.Addr, error) {
	if h.addr.Contains(dst) {
		return dst, nil
	}
	if !h.gw.IsValid() {
		return netip.Addr{}, fmt.Errorf("%w: %v is off-link and no gateway is set", ErrNoRoute, dst)
	}
	return h.gw, nil
}

// Resolve returns the MAC for an on-link IP, performing ARP with retries.
func (h *Host) Resolve(ip netip.Addr) (pkt.MAC, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return pkt.MAC{}, ErrClosed
	}
	if mac, ok := h.arpCache[ip]; ok {
		h.mu.Unlock()
		return mac, nil
	}
	ch := make(chan pkt.MAC, 1)
	h.arpWait[ip] = append(h.arpWait[ip], ch)
	h.mu.Unlock()

	for attempt := 0; attempt < h.arpRetries; attempt++ {
		h.sendARPRequest(ip)
		select {
		case mac := <-ch:
			return mac, nil
		case <-h.clk.After(h.arpTimeout):
		}
	}
	h.mu.Lock()
	waiters := h.arpWait[ip]
	for i, w := range waiters {
		if w == ch {
			h.arpWait[ip] = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	// A reply may have raced the timeout; prefer it.
	select {
	case mac := <-ch:
		return mac, nil
	default:
	}
	return pkt.MAC{}, fmt.Errorf("%w: %v", ErrARPTimeout, ip)
}

func (h *Host) sendARPRequest(ip netip.Addr) {
	req := pkt.NewARPRequest(h.mac, h.addr.Addr(), ip)
	f := &pkt.Frame{Dst: pkt.BroadcastMAC, Src: h.mac, Type: pkt.EtherTypeARP,
		Payload: req.Marshal()}
	h.ep.Send(f.Marshal())
}

// SendUDP sends one datagram to dst:dstPort from srcPort, resolving the next
// hop first. It blocks only for ARP resolution of uncached next hops.
func (h *Host) SendUDP(dst netip.Addr, srcPort, dstPort uint16, payload []byte) error {
	nh, err := h.nextHop(dst)
	if err != nil {
		return err
	}
	mac, err := h.Resolve(nh)
	if err != nil {
		return err
	}
	u := &pkt.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	h.mu.Lock()
	h.ipID++
	id := h.ipID
	h.mu.Unlock()
	ip := &pkt.IPv4{ID: id, TTL: 64, Proto: pkt.ProtoUDP,
		Src: h.addr.Addr(), Dst: dst, Payload: u.Marshal(h.addr.Addr(), dst)}
	f := &pkt.Frame{Dst: mac, Src: h.mac, Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	if !h.ep.Send(f.Marshal()) {
		return fmt.Errorf("netemu: host %s: frame dropped at NIC", h.name)
	}
	return nil
}

// Ping sends an ICMP echo request and waits for the reply or the timeout.
// The returned duration is measured on the host's clock.
func (h *Host) Ping(dst netip.Addr, timeout time.Duration) (time.Duration, error) {
	nh, err := h.nextHop(dst)
	if err != nil {
		return 0, err
	}
	mac, err := h.Resolve(nh)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	h.pingSeq++
	seq := h.pingSeq
	id := uint16(0xBEEF)
	key := uint32(id)<<16 | uint32(seq)
	ch := make(chan time.Duration, 1)
	h.pings[key] = ch
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.pings, key)
		h.mu.Unlock()
	}()

	start := h.clk.Now()
	echo := &pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: id, Seq: seq, Payload: []byte("routeflow-ping")}
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoICMP, Src: h.addr.Addr(), Dst: dst,
		Payload: echo.Marshal()}
	f := &pkt.Frame{Dst: mac, Src: h.mac, Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	if !h.ep.Send(f.Marshal()) {
		return 0, fmt.Errorf("netemu: host %s: ping frame dropped at NIC", h.name)
	}
	select {
	case <-ch:
		return h.clk.Since(start), nil
	case <-h.clk.After(timeout):
		return 0, fmt.Errorf("netemu: ping %v: timeout after %v", dst, timeout)
	}
}

func (h *Host) receive(frame []byte) {
	f, err := pkt.DecodeFrame(frame)
	if err != nil {
		return
	}
	if f.Dst != h.mac && !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() {
		return // not for us
	}
	switch f.Type {
	case pkt.EtherTypeARP:
		h.handleARP(f)
	case pkt.EtherTypeIPv4:
		h.handleIPv4(f)
	}
}

func (h *Host) handleARP(f *pkt.Frame) {
	a, err := pkt.DecodeARP(f.Payload)
	if err != nil {
		return
	}
	// Learn the sender either way.
	h.mu.Lock()
	h.arpCache[a.SenderIP] = a.SenderHW
	waiters := h.arpWait[a.SenderIP]
	delete(h.arpWait, a.SenderIP)
	h.mu.Unlock()
	for _, ch := range waiters {
		select {
		case ch <- a.SenderHW:
		default:
		}
	}
	if a.Op == pkt.ARPRequest && a.TargetIP == h.addr.Addr() {
		rep := a.Reply(h.mac, h.addr.Addr())
		out := &pkt.Frame{Dst: a.SenderHW, Src: h.mac, Type: pkt.EtherTypeARP,
			Payload: rep.Marshal()}
		h.ep.Send(out.Marshal())
	}
}

func (h *Host) handleIPv4(f *pkt.Frame) {
	ip, err := pkt.DecodeIPv4(f.Payload)
	if err != nil || ip.Dst != h.addr.Addr() {
		return
	}
	switch ip.Proto {
	case pkt.ProtoUDP:
		u, err := pkt.DecodeUDP(ip.Payload, ip.Src, ip.Dst)
		if err != nil {
			return
		}
		h.mu.Lock()
		fn := h.udpPorts[u.DstPort]
		h.mu.Unlock()
		if fn != nil {
			fn(ip.Src, u.SrcPort, u.Payload)
		}
	case pkt.ProtoICMP:
		m, err := pkt.DecodeICMP(ip.Payload)
		if err != nil {
			return
		}
		switch m.Type {
		case pkt.ICMPEchoRequest:
			rep := m.EchoReply()
			out := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoICMP,
				Src: h.addr.Addr(), Dst: ip.Src, Payload: rep.Marshal()}
			fr := &pkt.Frame{Dst: f.Src, Src: h.mac, Type: pkt.EtherTypeIPv4,
				Payload: out.Marshal()}
			h.ep.Send(fr.Marshal())
		case pkt.ICMPEchoReply:
			key := uint32(m.ID)<<16 | uint32(m.Seq)
			h.mu.Lock()
			ch := h.pings[key]
			h.mu.Unlock()
			if ch != nil {
				select {
				case ch <- 0:
				default:
				}
			}
		}
	}
}

// ARPCacheSnapshot returns a copy of the ARP cache (tests, GUI).
func (h *Host) ARPCacheSnapshot() map[netip.Addr]pkt.MAC {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[netip.Addr]pkt.MAC, len(h.arpCache))
	for k, v := range h.arpCache {
		out[k] = v
	}
	return out
}

package intent

// Ownership-handoff coverage: when a shard re-homes from one controller
// replica to another, the old owner's store must Retain-drop the shard's
// items (no teardowns — the new master re-declares them) and from then on
// exactly one reconciler writes the switch's desired state, even across a
// server epoch bump that forces a full re-sync.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/rpcconf"
)

func TestRetainDropsWithoutTeardown(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	rec := NewReconciler(clk, store, snd, WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 4), rpcconf.SwitchDown(1))
	store.Declare(SwitchKey(2), rpcconf.SwitchUp(2, 4), rpcconf.SwitchDown(2))
	eventually(t, func() bool { return snd.has(1) && snd.has(2) }, "switches never converged")

	if n := store.Retain(func(k Key) bool { return k.DPID != 2 }); n != 1 {
		t.Fatalf("Retain dropped %d entries, want 1", n)
	}
	if !store.Converged() {
		t.Fatal("store not converged after Retain")
	}
	if got := snd.sendCount(rpcconf.KindSwitchDown); got != 0 {
		t.Fatalf("Retain issued %d teardowns, want 0", got)
	}
	// The dropped switch still exists on the server — the new owner's
	// reconciler is responsible for it now.
	if !snd.has(2) {
		t.Fatal("retained-away switch was torn down")
	}
}

func TestRetainDropsWedgedDeletingEntry(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	rec := NewReconciler(clk, store, snd, WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(7), rpcconf.SwitchUp(7, 2), rpcconf.SwitchDown(7))
	eventually(t, func() bool { return snd.has(7) }, "switch never converged")

	// The owner loses its switch connectivity, then the item is removed:
	// the teardown can never be delivered.
	snd.mu.Lock()
	snd.failAll = true
	snd.mu.Unlock()
	store.Remove(SwitchKey(7))
	if store.Converged() {
		t.Fatal("store converged with a teardown pending")
	}

	// Ownership transfer: the wedged deleting entry must be droppable too,
	// or the partitioned replica's store wedges Converged forever.
	if n := store.Retain(func(Key) bool { return false }); n != 1 {
		t.Fatalf("Retain dropped %d entries, want 1", n)
	}
	if !store.Converged() {
		t.Fatal("store still not converged after dropping the wedged teardown")
	}
}

// TestHandoffEpochResyncScopedToNewOwner is the fake-clock unit suite for
// the handoff contract: after a shard moves from replica A to replica B, a
// server epoch bump must trigger a re-sync from B's reconciler only — A has
// forgotten the item and stays silent.
func TestHandoffEpochResyncScopedToNewOwner(t *testing.T) {
	clk := clock.NewFake()
	storeA, storeB := NewStore(), NewStore()
	sndA, sndB := newFakeSender(), newFakeSender()
	recA := NewReconciler(clk, storeA, sndA, WithResyncProbe(time.Second))
	recB := NewReconciler(clk, storeB, sndB, WithResyncProbe(time.Second))
	recA.Run()
	recB.Run()
	defer recA.Stop()
	defer recB.Stop()

	up, down := rpcconf.SwitchUp(3, 4), rpcconf.SwitchDown(3)
	storeA.Declare(SwitchKey(3), up, down)
	eventually(t, func() bool { return sndA.has(3) }, "A never configured the switch")
	upsA := sndA.sendCount(rpcconf.KindSwitchUp)

	// Handoff A -> B.
	storeA.Retain(func(Key) bool { return false })
	storeB.Declare(SwitchKey(3), up, down)
	eventually(t, func() bool { return sndB.has(3) }, "B never configured the switch")

	// B's server restarts (epoch bump, acked state lost).
	sndB.clearState()
	sndB.setEpoch(2)
	advanceUntil(t, clk, 100*time.Millisecond,
		func() bool { return sndB.has(3) }, "B never re-synced after the epoch bump")
	if got := storeB.Statistics().Resyncs; got != 1 {
		t.Fatalf("B recorded %d resyncs, want 1", got)
	}

	// A must have stayed silent through all of it: no new sends, converged.
	if got := sndA.sendCount(rpcconf.KindSwitchUp); got != upsA {
		t.Fatalf("old owner kept writing after handoff: %d -> %d switch-ups", upsA, got)
	}
	if got := sndA.sendCount(rpcconf.KindSwitchDown); got != 0 {
		t.Fatalf("old owner issued %d teardowns", got)
	}
	if !storeA.Converged() {
		t.Fatal("old owner's store not converged after handoff")
	}
}

// sharedLog records which replica wrote the switch last — the arbiter for
// the exactly-one-writer assertion.
type sharedLog struct {
	mu     sync.Mutex
	writes int
	last   int
}

func (l *sharedLog) record(replica int) {
	l.mu.Lock()
	l.writes++
	l.last = replica
	l.mu.Unlock()
}

func (l *sharedLog) snapshot() (int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writes, l.last
}

// loggingSender tags every successful switch-up apply with its replica ID.
type loggingSender struct {
	*fakeSender
	replica int
	log     *sharedLog
}

func (s *loggingSender) Send(m *rpcconf.Message) error {
	if err := s.fakeSender.Send(m); err != nil {
		return err
	}
	if m.Kind == rpcconf.KindSwitchUp {
		s.log.record(s.replica)
	}
	return nil
}

// TestHandoffRaceHammer bounces one switch's desired state between two
// store/reconciler pairs hundreds of times on the system clock (run under
// -race), with concurrent epoch bumps, and requires the system to quiesce to
// exactly one writer: the final owner's store converged and writing, the
// loser's store empty and silent.
func TestHandoffRaceHammer(t *testing.T) {
	clk := clock.System()
	log := &sharedLog{}
	stores := [2]*Store{NewStore(), NewStore()}
	senders := [2]*loggingSender{
		{fakeSender: newFakeSender(), replica: 0, log: log},
		{fakeSender: newFakeSender(), replica: 1, log: log},
	}
	var recs [2]*Reconciler
	for i := range stores {
		recs[i] = NewReconciler(clk, stores[i], senders[i],
			WithBackoff(time.Millisecond, 5*time.Millisecond),
			WithResyncProbe(2*time.Millisecond))
		recs[i].Run()
		defer recs[i].Stop()
	}

	up, down := rpcconf.SwitchUp(9, 4), rpcconf.SwitchDown(9)
	rng := rand.New(rand.NewSource(1))
	owner := 0
	stores[owner].Declare(SwitchKey(9), up, down)
	const handoffs = 300
	for i := 0; i < handoffs; i++ {
		next := 1 - owner
		// Transfer: old owner forgets, new owner declares. Deliberately no
		// synchronization with the reconciler goroutines.
		stores[owner].Retain(func(Key) bool { return false })
		stores[next].Declare(SwitchKey(9), up, down)
		owner = next
		if rng.Intn(10) == 0 {
			// Server epoch bump mid-handoff: both reconcilers observe it on
			// their next contact; only the current owner may re-sync.
			senders[owner].setEpoch(uint64(2 + i))
		}
		if rng.Intn(5) == 0 {
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	loser := 1 - owner
	eventually(t, func() bool {
		return stores[owner].Converged() && senders[owner].has(9) && stores[loser].Converged()
	}, "system never quiesced after the handoff storm")

	// Quiesced: no further writes from anyone, and the last writer is the
	// final owner.
	writes1, _ := log.snapshot()
	time.Sleep(50 * time.Millisecond)
	writes2, last := log.snapshot()
	if writes2 != writes1 {
		t.Fatalf("writes kept flowing after quiesce: %d -> %d", writes1, writes2)
	}
	if last != owner {
		t.Fatalf("last writer was replica %d, want final owner %d", last, owner)
	}
	if st := stores[loser].Statistics(); st.Desired != 0 || st.Deleting != 0 {
		t.Fatalf("loser still tracks state: %+v", st)
	}
}

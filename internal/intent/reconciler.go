package intent

import (
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/rpcconf"
)

// Sender delivers one configuration message and exposes the server epoch
// observed in acknowledgements. *rpcconf.Client implements it.
type Sender interface {
	Send(*rpcconf.Message) error
	Epoch() uint64
}

// Reconciler defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
	DefaultResyncProbe = 10 * time.Second
)

// Reconciler continuously drives acknowledged state toward desired state:
// it drains the store's diff, retries failures with exponential backoff,
// and probes the server while idle so a restart (epoch change) re-syncs the
// full desired state.
type Reconciler struct {
	clk    clock.Clock
	store  *Store
	sender Sender

	base    time.Duration // first retry delay
	max     time.Duration // backoff ceiling
	probe   time.Duration // idle re-sync probe period (0 disables)
	onError func(error)

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	started bool
}

// Option tweaks the reconciler.
type Option func(*Reconciler)

// WithBackoff sets the retry schedule: first retry after base, doubling up
// to max.
func WithBackoff(base, max time.Duration) Option {
	return func(r *Reconciler) { r.base, r.max = base, max }
}

// WithResyncProbe sets how often an idle reconciler probes the server for
// epoch changes (restart detection). Zero disables probing.
func WithResyncProbe(d time.Duration) Option {
	return func(r *Reconciler) { r.probe = d }
}

// WithOnError installs a delivery-failure observer. Failures are expected
// and retried; the observer exists for logging and tests.
func WithOnError(f func(error)) Option {
	return func(r *Reconciler) { r.onError = f }
}

// NewReconciler builds a reconciler over store, delivering through sender.
func NewReconciler(clk clock.Clock, store *Store, sender Sender, opts ...Option) *Reconciler {
	if clk == nil {
		clk = clock.System()
	}
	r := &Reconciler{
		clk:    clk,
		store:  store,
		sender: sender,
		base:   DefaultBackoffBase,
		max:    DefaultBackoffMax,
		probe:  DefaultResyncProbe,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Store returns the desired-state store this reconciler drains.
func (r *Reconciler) Store() *Store { return r.store }

// Run starts the reconciliation loop (returns immediately).
func (r *Reconciler) Run() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	go r.loop()
}

// Stop halts the loop and waits for it to exit. Safe to call more than once
// and before Run.
func (r *Reconciler) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

func (r *Reconciler) loop() {
	defer close(r.done)
	lastContact := r.clk.Now()
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		now := r.clk.Now()
		batch, wait := r.store.due(now)
		if len(batch) > 0 {
			for _, w := range batch {
				select {
				case <-r.stop:
					return
				default:
				}
				err := r.sender.Send(w.msg)
				r.store.complete(w, err, r.sender.Epoch(), r.clk.Now(), r.base, r.max)
				if err == nil {
					lastContact = r.clk.Now()
				} else if r.onError != nil {
					r.onError(err)
				}
			}
			continue
		}
		// Idle: wake for the earliest backoff retry, the re-sync probe, or a
		// store signal — whichever comes first.
		sleep := wait
		if r.probe > 0 {
			probeIn := r.probe - now.Sub(lastContact)
			if probeIn <= 0 {
				if err := r.sender.Send(rpcconf.Probe()); err == nil {
					r.store.observeEpoch(r.sender.Epoch())
				}
				// Successful or not, pace the probe: a dead server should be
				// retried at the probe period, not in a hot loop.
				lastContact = r.clk.Now()
				continue
			}
			if sleep <= 0 || probeIn < sleep {
				sleep = probeIn
			}
		}
		var timer clock.Timer
		var timerC <-chan time.Time
		if sleep > 0 {
			timer = r.clk.NewTimer(sleep)
			timerC = timer.C()
		}
		select {
		case <-r.store.signal:
		case <-timerC:
		case <-r.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

package intent

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/ctlkit"
	"routeflow/internal/rpcconf"
)

// fakeSender is a scriptable rf-server stand-in: it applies successful
// messages into a state map and fails on demand, exposing a mutable epoch.
type fakeSender struct {
	mu      sync.Mutex
	fail    int // fail this many sends, then succeed
	failAll bool
	epoch   uint64
	applied map[rpcconf.Kind][]rpcconf.Message
	state   map[uint64]bool // dpid present (switch-up/down)
	order   []rpcconf.Kind
}

func newFakeSender() *fakeSender {
	return &fakeSender{
		epoch:   1,
		applied: make(map[rpcconf.Kind][]rpcconf.Message),
		state:   make(map[uint64]bool),
	}
}

func (f *fakeSender) Send(m *rpcconf.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAll || f.fail > 0 {
		if f.fail > 0 {
			f.fail--
		}
		return errors.New("fake: injected delivery failure")
	}
	f.applied[m.Kind] = append(f.applied[m.Kind], *m)
	f.order = append(f.order, m.Kind)
	switch m.Kind {
	case rpcconf.KindSwitchUp:
		f.state[m.DPID] = true
	case rpcconf.KindSwitchDown:
		delete(f.state, m.DPID)
	}
	return nil
}

func (f *fakeSender) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeSender) setEpoch(e uint64) {
	f.mu.Lock()
	f.epoch = e
	f.mu.Unlock()
}

func (f *fakeSender) clearState() {
	f.mu.Lock()
	f.state = make(map[uint64]bool)
	f.mu.Unlock()
}

func (f *fakeSender) has(dpid uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state[dpid]
}

func (f *fakeSender) sendCount(k rpcconf.Kind) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.applied[k])
}

func eventually(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// advanceUntil steps the fake clock by step until cond holds, tracking the
// total fake time advanced.
func advanceUntil(t *testing.T, clk *clock.Fake, step time.Duration, cond func() bool, msg string) time.Duration {
	t.Helper()
	var advanced time.Duration
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return advanced
		}
		clk.Advance(step)
		advanced += step
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
	return advanced
}

func TestDeclareConvergesAndIsIdempotent(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	rec := NewReconciler(clk, store, snd, WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 4), rpcconf.SwitchDown(1))
	eventually(t, store.Converged, "declared switch never converged")
	if !snd.has(1) {
		t.Fatal("switch not applied")
	}
	// Level-triggered no-op: re-declaring the identical item sends nothing.
	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 4), rpcconf.SwitchDown(1))
	time.Sleep(20 * time.Millisecond)
	if got := snd.sendCount(rpcconf.KindSwitchUp); got != 1 {
		t.Fatalf("sends after idempotent redeclare = %d, want 1", got)
	}
	// A *changed* declaration re-applies.
	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 5), rpcconf.SwitchDown(1))
	eventually(t, func() bool { return snd.sendCount(rpcconf.KindSwitchUp) == 2 },
		"changed declaration never re-applied")
	st := store.Statistics()
	if st.Desired != 1 || st.Acked != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryGatedOnClockWithBackoff(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	snd.fail = 1
	rec := NewReconciler(clk, store, snd,
		WithBackoff(100*time.Millisecond, time.Second), WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(2), rpcconf.SwitchUp(2, 1), rpcconf.SwitchDown(2))
	eventually(t, func() bool { return store.Statistics().Failures == 1 },
		"first attempt never failed")
	// Retry must wait for *clock* time, not wall time.
	time.Sleep(50 * time.Millisecond)
	if store.Statistics().Sends != 1 {
		t.Fatalf("retried with a frozen clock: sends = %d", store.Statistics().Sends)
	}
	advanceUntil(t, clk, 25*time.Millisecond, store.Converged, "retry never converged")
	if st := store.Statistics(); st.Sends != 2 {
		t.Fatalf("sends = %d, want exactly 2 (one failure, one retry)", st.Sends)
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	snd.failAll = true
	base := 100 * time.Millisecond
	rec := NewReconciler(clk, store, snd, WithBackoff(base, time.Hour), WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(3), rpcconf.SwitchUp(3, 1), rpcconf.SwitchDown(3))
	eventually(t, func() bool { return store.Statistics().Sends == 1 }, "first send missing")
	// Attempts 2..4 come after backoffs of base, 2*base and 4*base: the
	// fake time needed to reach 4 sends is at least base+2*base+4*base.
	advanced := advanceUntil(t, clk, base/4,
		func() bool { return store.Statistics().Sends >= 4 }, "retries stalled")
	if min := 7 * base; advanced < min {
		t.Fatalf("4 attempts after only %v of fake time, want >= %v (exponential backoff)", advanced, min)
	}
	// Recovery: stop failing, advance, converge.
	snd.mu.Lock()
	snd.failAll = false
	snd.mu.Unlock()
	advanceUntil(t, clk, base, store.Converged, "never converged after recovery")
}

func TestApplyOrderSwitchesBeforeLinksAndHosts(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	// Declare in the worst order before the reconciler starts.
	gw := netip.MustParsePrefix("10.1.0.1/24")
	a := netip.MustParsePrefix("172.16.0.1/30")
	b := netip.MustParsePrefix("172.16.0.2/30")
	store.Declare(HostKey(1, 3), rpcconf.HostUp(1, 3, gw), rpcconf.HostDown(1, 3))
	store.Declare(LinkKey(1, 1, 2, 1), rpcconf.LinkUp(1, 1, 2, 1, a, b), rpcconf.LinkDown(1, 1, 2, 1))
	store.Declare(SwitchKey(2), rpcconf.SwitchUp(2, 2), rpcconf.SwitchDown(2))
	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 2), rpcconf.SwitchDown(1))

	rec := NewReconciler(clk, store, snd, WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()
	eventually(t, store.Converged, "never converged")

	snd.mu.Lock()
	order := append([]rpcconf.Kind(nil), snd.order...)
	snd.mu.Unlock()
	want := []rpcconf.Kind{rpcconf.KindSwitchUp, rpcconf.KindSwitchUp,
		rpcconf.KindLinkUp, rpcconf.KindHostUp}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFlapStormConvergesToFinalState(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	rec := NewReconciler(clk, store, snd, WithResyncProbe(0))
	rec.Run()
	defer rec.Stop()

	// A switch flapping 50 times while the reconciler races the storm.
	for i := 0; i < 50; i++ {
		store.Declare(SwitchKey(7), rpcconf.SwitchUp(7, 2), rpcconf.SwitchDown(7))
		store.Remove(SwitchKey(7))
	}
	store.Declare(SwitchKey(7), rpcconf.SwitchUp(7, 2), rpcconf.SwitchDown(7))
	eventually(t, func() bool { return store.Converged() && snd.has(7) },
		"flap storm never settled on declared state")

	// And the mirror storm ending in removal.
	for i := 0; i < 50; i++ {
		store.Remove(SwitchKey(7))
		store.Declare(SwitchKey(7), rpcconf.SwitchUp(7, 2), rpcconf.SwitchDown(7))
	}
	store.Remove(SwitchKey(7))
	eventually(t, func() bool { return store.Converged() && !snd.has(7) },
		"flap storm never settled on removal")
	if st := store.Statistics(); st.Desired != 0 || st.Deleting != 0 {
		t.Fatalf("stats after removal = %+v", st)
	}
}

func TestRemoveBeforeAnySendDropsSilently(t *testing.T) {
	store := NewStore()
	store.Declare(SwitchKey(9), rpcconf.SwitchUp(9, 1), rpcconf.SwitchDown(9))
	store.Remove(SwitchKey(9))
	if !store.Converged() {
		t.Fatal("unsent item left a tombstone")
	}
	if st := store.Statistics(); st.Desired != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerRestartTriggersResync(t *testing.T) {
	clk := clock.NewFake()
	store := NewStore()
	snd := newFakeSender()
	probe := 10 * time.Second
	rec := NewReconciler(clk, store, snd, WithResyncProbe(probe))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(1), rpcconf.SwitchUp(1, 2), rpcconf.SwitchDown(1))
	store.Declare(SwitchKey(2), rpcconf.SwitchUp(2, 2), rpcconf.SwitchDown(2))
	eventually(t, store.Converged, "initial declarations never converged")

	// The server "restarts": state gone, epoch changed. Nothing else will
	// ever poke the store — only the idle probe can notice.
	snd.clearState()
	snd.setEpoch(2)
	advanceUntil(t, clk, time.Second,
		func() bool { return store.Converged() && snd.has(1) && snd.has(2) },
		"desired state never re-synced after server restart")
	if st := store.Statistics(); st.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", st.Resyncs)
	}
}

// TestReconcilerOverRealRPC drives the reconciler through the real rpcconf
// client/server pair, restarts the server (fresh epoch, empty state) and
// checks the probe-driven re-sync repopulates it.
func TestReconcilerOverRealRPC(t *testing.T) {
	type srv struct {
		l       *ctlkit.MemListener
		s       *rpcconf.Server
		mu      sync.Mutex
		applied map[uint64]bool
	}
	newSrv := func() *srv {
		v := &srv{l: ctlkit.NewMemListener("rpc"), applied: make(map[uint64]bool)}
		v.s = rpcconf.NewServer(func(m *rpcconf.Message) error {
			v.mu.Lock()
			defer v.mu.Unlock()
			switch m.Kind {
			case rpcconf.KindSwitchUp:
				v.applied[m.DPID] = true
			case rpcconf.KindSwitchDown:
				delete(v.applied, m.DPID)
			}
			return nil
		})
		go v.s.Serve(v.l)
		return v
	}
	cur := newSrv()
	var mu sync.Mutex
	dial := func() (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		return cur.l.Dial()
	}
	client := rpcconf.NewClient(dial, nil, rpcconf.WithRetry(time.Millisecond, 2))
	defer client.Close()

	store := NewStore()
	rec := NewReconciler(clock.System(), store, client,
		WithBackoff(time.Millisecond, 50*time.Millisecond),
		WithResyncProbe(20*time.Millisecond))
	rec.Run()
	defer rec.Stop()

	store.Declare(SwitchKey(0xAA), rpcconf.SwitchUp(0xAA, 4), rpcconf.SwitchDown(0xAA))
	eventually(t, store.Converged, "never converged over real RPC")

	// Restart: new listener, new server incarnation, state lost.
	old := cur
	next := newSrv()
	mu.Lock()
	cur = next
	mu.Unlock()
	old.l.Close()
	old.s.Stop()

	eventually(t, func() bool {
		next.mu.Lock()
		defer next.mu.Unlock()
		return next.applied[0xAA]
	}, "restarted server never re-synced from desired state")
	eventually(t, store.Converged, "store never reconverged after restart")
	defer next.l.Close()
}

// Package intent is the declarative configuration model that turns the
// paper's fire-and-forget control pipeline into a level-triggered
// reconciliation engine. The topology controller no longer reacts to a
// discovery event by sending one RPC and hoping: it *declares* desired state
// (switches, links with allocated subnets, host attachments) into a
// versioned Store, and a Reconciler continuously diffs desired against
// acknowledged state, (re)issuing configuration RPCs with exponential
// backoff until the rf-server acknowledges every item.
//
// The model survives everything the edge-triggered design could not: a
// dropped RPC is retried until acked, a flapping switch converges to its
// final declared state, and an rf-server restart (detected through the ack
// epoch) triggers a full re-sync from desired state.
package intent

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"routeflow/internal/rpcconf"
)

// Kind classifies desired-state items. Apply order follows Kind order:
// switches first (links and hosts reference their VMs), then everything
// else, then teardowns.
type Kind uint8

// Item kinds.
const (
	KindSwitch Kind = iota
	KindLink
	KindHost
)

// Key identifies one desired-state item. It is comparable; unused fields
// stay zero.
type Key struct {
	Kind  Kind
	DPID  uint64 // switch and host items
	Port  uint16 // host items
	ADPID uint64 // link items
	APort uint16
	BDPID uint64
	BPort uint16
}

// SwitchKey identifies the VM for a datapath.
func SwitchKey(dpid uint64) Key { return Key{Kind: KindSwitch, DPID: dpid} }

// HostKey identifies a host attachment (gateway interface) on a switch port.
func HostKey(dpid uint64, port uint16) Key {
	return Key{Kind: KindHost, DPID: dpid, Port: port}
}

// LinkKey identifies an inter-switch link with its endpoint ports.
func LinkKey(aDPID uint64, aPort uint16, bDPID uint64, bPort uint16) Key {
	return Key{Kind: KindLink, ADPID: aDPID, APort: aPort, BDPID: bDPID, BPort: bPort}
}

// entry is the store's record for one item: the message that realises it,
// the message that tears it down, and the reconciliation state.
type entry struct {
	key      Key
	up       *rpcconf.Message
	down     *rpcconf.Message
	gen      uint64 // store generation of the last (re)declaration
	acked    bool   // server acknowledged the current up message
	deleting bool   // item removed from desired state; down message pending
	attempts int    // sends issued for the current incarnation
	backoff  time.Duration
	next     time.Time // zero = due immediately
}

// Stats is an observability snapshot of the store.
type Stats struct {
	Desired  int    // declared items
	Acked    int    // declared items the server confirmed
	Deleting int    // teardowns awaiting acknowledgement
	Sends    uint64 // total RPC attempts issued by the reconciler
	Failures uint64 // attempts that returned an error
	Resyncs  uint64 // full re-syncs triggered by server epoch changes
}

// Store holds desired state versus acknowledged state. Writers (the
// topology controller) Declare and Remove; the Reconciler drains the diff.
type Store struct {
	mu       sync.Mutex
	gen      uint64
	entries  map[Key]*entry
	epoch    uint64 // last server epoch observed through acks
	sends    uint64
	failures uint64
	resyncs  uint64
	// signal wakes the reconciler when new work appears (capacity 1).
	signal chan struct{}
}

// NewStore creates an empty desired-state store.
func NewStore() *Store {
	return &Store{
		entries: make(map[Key]*entry),
		signal:  make(chan struct{}, 1),
	}
}

// sameConfig compares two configuration messages ignoring the transport
// sequence number.
func sameConfig(a, b *rpcconf.Message) bool {
	x, y := *a, *b
	x.Seq, y.Seq = 0, 0
	return x == y
}

func (s *Store) signalLocked() {
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// Declare records that key must exist, realised by up, torn down (if ever
// removed) by down. Re-declaring an unchanged item is a no-op; a changed
// item (or one pending deletion) is marked dirty and re-applied.
func (s *Store) Declare(k Key, up, down *rpcconf.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil {
		s.gen++
		s.entries[k] = &entry{key: k, up: up, down: down, gen: s.gen}
		s.signalLocked()
		return
	}
	if !e.deleting && e.up != nil && sameConfig(e.up, up) {
		e.down = down
		return // level-triggered idempotence: nothing changed
	}
	s.gen++
	e.up, e.down = up, down
	e.gen = s.gen
	e.deleting = false
	e.acked = false
	e.backoff = 0
	e.next = time.Time{}
	s.signalLocked()
}

// Remove records that key must no longer exist. If the item was never sent
// it is dropped outright; otherwise its teardown message is issued until
// acknowledged.
func (s *Store) Remove(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil || e.deleting {
		return
	}
	if !e.acked && e.attempts == 0 {
		delete(s.entries, k) // nothing reached the server; nothing to undo
		return
	}
	s.gen++
	e.gen = s.gen
	e.deleting = true
	e.acked = false
	e.backoff = 0
	e.next = time.Time{}
	s.signalLocked()
}

// Retain drops every entry whose key fails pred, without issuing teardowns —
// including entries mid-deletion. This is the ownership-transfer primitive:
// when a shard re-homes to another replica, the old owner's store must stop
// tracking the shard's items outright (the new master's store re-declares
// them; sending teardowns would fight it, and a partitioned replica's
// pending items would otherwise wedge Converged forever). Returns the number
// of entries dropped.
func (s *Store) Retain(pred func(Key) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for k := range s.entries {
		if !pred(k) {
			delete(s.entries, k)
			dropped++
		}
	}
	if dropped > 0 {
		s.signalLocked()
	}
	return dropped
}

// Converged reports whether acknowledged state matches desired state: every
// declared item acked and no teardown pending.
func (s *Store) Converged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.deleting || !e.acked {
			return false
		}
	}
	return true
}

// PendingItems describes every not-yet-converged item (diagnostics).
func (s *Store) PendingItems() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, e := range s.entries {
		if e.acked && !e.deleting {
			continue
		}
		msg := e.up
		verb := "apply"
		if e.deleting {
			msg, verb = e.down, "delete"
		}
		out = append(out, fmt.Sprintf("%s %s dpid=%x/%x attempts=%d backoff=%v",
			verb, msg.Kind, msg.DPID|msg.ADPID, msg.BDPID, e.attempts, e.backoff))
	}
	return out
}

// Statistics returns a snapshot of the store's counters.
func (s *Store) Statistics() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Sends: s.sends, Failures: s.failures, Resyncs: s.resyncs}
	for _, e := range s.entries {
		if e.deleting {
			st.Deleting++
			continue
		}
		st.Desired++
		if e.acked {
			st.Acked++
		}
	}
	return st
}

// workItem is one claimed send: the message plus the generation it realises,
// so a concurrent re-declaration invalidates the completion.
type workItem struct {
	key Key
	gen uint64
	msg *rpcconf.Message
}

// due claims every item whose retry time has arrived, in apply order
// (switch creations first, teardowns last). wait is the duration until the
// earliest not-yet-due item, or 0 when nothing is scheduled.
func (s *Store) due(now time.Time) (batch []workItem, wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if !e.next.IsZero() && e.next.After(now) {
			if d := e.next.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		msg := e.up
		if e.deleting {
			msg = e.down
		}
		if msg == nil || (!e.deleting && e.acked) {
			continue
		}
		e.attempts++
		s.sends++
		// Copy: the client stamps Seq into the message it sends, while a
		// concurrent Declare may read the stored original for comparison.
		cp := *msg
		batch = append(batch, workItem{key: e.key, gen: e.gen, msg: &cp})
	}
	sortBatch(batch)
	return batch, wait
}

// sortBatch orders sends: creations before teardowns, switches before links
// and hosts (their VMs must exist), then deterministic key order.
func sortBatch(batch []workItem) {
	isDown := func(k rpcconf.Kind) bool {
		return k == rpcconf.KindSwitchDown || k == rpcconf.KindLinkDown || k == rpcconf.KindHostDown
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if ad, bd := isDown(a.msg.Kind), isDown(b.msg.Kind); ad != bd {
			return bd
		}
		if a.key.Kind != b.key.Kind {
			return a.key.Kind < b.key.Kind
		}
		if a.key.DPID != b.key.DPID {
			return a.key.DPID < b.key.DPID
		}
		if a.key.ADPID != b.key.ADPID {
			return a.key.ADPID < b.key.ADPID
		}
		if a.key.APort != b.key.APort {
			return a.key.APort < b.key.APort
		}
		if a.key.BDPID != b.key.BDPID {
			return a.key.BDPID < b.key.BDPID
		}
		if a.key.Port != b.key.Port {
			return a.key.Port < b.key.Port
		}
		return a.key.BPort < b.key.BPort
	})
}

// complete records the outcome of one send. A success acknowledges the item
// (or finalises its deletion); a failure schedules the next attempt with
// exponential backoff. epoch is the server epoch observed on success.
func (s *Store) complete(w workItem, err error, epoch uint64, now time.Time, base, max time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Observe the epoch regardless of outcome: a remote-handler error still
	// carries an ack, and that ack may be the first evidence of a server
	// restart (on transport errors the sender reports its previous epoch,
	// so this is a no-op there).
	s.observeEpochLocked(epoch)
	if err != nil {
		s.failures++
	}
	e := s.entries[w.key]
	if e == nil || e.gen != w.gen {
		return // superseded by a newer declaration; its own send is pending
	}
	if err == nil {
		if e.deleting {
			delete(s.entries, w.key)
			return
		}
		e.acked = true
		e.backoff = 0
		e.next = time.Time{}
		return
	}
	if e.backoff <= 0 {
		e.backoff = base
	} else {
		e.backoff *= 2
		if e.backoff > max {
			e.backoff = max
		}
	}
	e.next = now.Add(e.backoff)
}

// observeEpoch folds a server epoch seen outside complete (the idle probe)
// into the store, triggering a re-sync when the server restarted.
func (s *Store) observeEpoch(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeEpochLocked(epoch)
}

func (s *Store) observeEpochLocked(epoch uint64) {
	if epoch == 0 {
		return
	}
	if s.epoch == 0 {
		s.epoch = epoch
		return
	}
	if epoch == s.epoch {
		return
	}
	// Server restarted: everything it ever acknowledged is gone. Re-apply
	// the whole desired state.
	s.epoch = epoch
	s.resyncs++
	for _, e := range s.entries {
		if e.acked {
			e.acked = false
			e.backoff = 0
			e.next = time.Time{}
		}
	}
	s.signalLocked()
}

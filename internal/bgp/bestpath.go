package bgp

import (
	"net/netip"
	"sort"

	"routeflow/internal/rib"
)

// candidate is one path to a prefix during the decision process; peer is nil
// for locally originated prefixes (networks and redistributed IGP routes).
// hop/iface carry the recursive next-hop resolution computed at eligibility
// time, so the install step never resolves twice.
type candidate struct {
	attrs PathAttrs
	peer  *peer
	hop   netip.Addr
	iface string
}

func (c candidate) localPref() uint32 {
	if c.peer == nil || !c.attrs.HasLP {
		return defaultLocalPref
	}
	return c.attrs.LocalPref
}

// sourceRank orders local < eBGP < iBGP for the decision tie-break.
func (c candidate) sourceRank() int {
	switch {
	case c.peer == nil:
		return 0
	case !c.peer.ibgp:
		return 1
	default:
		return 2
	}
}

// neighborAS is the AS the path was received from (its first AS-path
// element); 0 for locally originated paths. MED is only comparable between
// paths from the same neighboring AS (RFC 4271 §9.1.2.2).
func (c candidate) neighborAS() uint16 {
	if len(c.attrs.ASPath) == 0 {
		return 0
	}
	return c.attrs.ASPath[0]
}

// better implements the standard decision process: highest LOCAL_PREF,
// shortest AS path, lowest origin, lowest MED (same neighboring AS only),
// eBGP over iBGP, lowest peer address (deterministic stand-in for lowest
// router ID).
func (a candidate) better(b candidate) bool {
	if la, lb := a.localPref(), b.localPref(); la != lb {
		return la > lb
	}
	if la, lb := len(a.attrs.ASPath), len(b.attrs.ASPath); la != lb {
		return la < lb
	}
	if a.attrs.Origin != b.attrs.Origin {
		return a.attrs.Origin < b.attrs.Origin
	}
	if a.neighborAS() == b.neighborAS() && a.attrs.MED != b.attrs.MED {
		return a.attrs.MED < b.attrs.MED
	}
	if ra, rb := a.sourceRank(), b.sourceRank(); ra != rb {
		return ra < rb
	}
	if a.peer != nil && b.peer != nil && a.peer.addr != b.peer.addr {
		return a.peer.addr.Less(b.peer.addr)
	}
	return false
}

// localOrigins collects the locally originated prefixes: explicit network
// statements plus redistribution of the configured RIB sources. The RIB's
// best-route set is the redistribution source, so a prefix whose best route
// is itself BGP-learned is never re-originated.
func (s *Speaker) localOrigins() map[netip.Prefix]PathAttrs {
	out := make(map[netip.Prefix]PathAttrs)
	for _, n := range s.cfg.Networks {
		out[n.Masked()] = PathAttrs{Origin: OriginIGP}
	}
	if len(s.cfg.Redistribute) == 0 {
		return out
	}
	redist := make(map[rib.Source]bool, len(s.cfg.Redistribute))
	for _, src := range s.cfg.Redistribute {
		redist[src] = true
	}
	for _, rt := range s.cfg.RIB.Best() {
		if !redist[rt.Source] {
			continue
		}
		if _, ok := out[rt.Prefix]; ok {
			continue // explicit network statement wins
		}
		origin := OriginIncomplete
		if rt.Source == rib.SourceConnected {
			origin = OriginIGP
		}
		out[rt.Prefix] = PathAttrs{Origin: origin, MED: rt.Metric}
	}
	return out
}

// resolve recursively resolves a BGP next hop through the RIB to the
// immediate (connected) next hop and egress interface — what a FIB install
// needs. Routes already in the RIB always carry immediate next hops, so one
// lookup terminates the recursion.
func (s *Speaker) resolve(nh netip.Addr) (hop netip.Addr, iface string, ok bool) {
	rt, ok := s.cfg.RIB.Lookup(nh)
	if !ok {
		return netip.Addr{}, "", false
	}
	if rt.NextHop.IsValid() {
		return rt.NextHop, rt.Iface, true
	}
	return nh, rt.Iface, true // connected: the peer itself is the hop
}

// decideLocked runs the decision process and propagates its outcome: the
// Loc-RIB is installed into the shared RIB under the eBGP/iBGP distances and
// every Established peer's Adj-RIB-Out is diffed and synchronized with
// UPDATE / withdraw messages. Callers hold s.mu.
func (s *Speaker) decideLocked() {
	s.stats.DecisionRuns++

	local := s.localOrigins()
	best := make(map[netip.Prefix]candidate, len(local))
	for p, attrs := range local {
		best[p] = candidate{attrs: attrs}
	}
	peers := s.sortedPeersLocked()
	for _, p := range peers {
		if p.state != StateEstablished || p.suppressed {
			continue
		}
		for prefix, attrs := range p.adjIn {
			hop, iface, ok := s.resolve(attrs.NextHop)
			if !ok {
				continue // unreachable next hop: not eligible
			}
			c := candidate{attrs: attrs, peer: p, hop: hop, iface: iface}
			if cur, ok := best[prefix]; !ok || c.better(cur) {
				best[prefix] = c
			}
		}
	}

	// Install learned best paths (locally originated prefixes already live
	// in the RIB under their own source).
	var ebgp, ibgp []rib.Route
	for prefix, c := range best {
		if c.peer == nil {
			continue
		}
		rt := rib.Route{Prefix: prefix, NextHop: c.hop, Iface: c.iface, Metric: c.attrs.MED}
		if c.peer.ibgp {
			rt.Source = rib.SourceIBGP
			ibgp = append(ibgp, rt)
		} else {
			rt.Source = rib.SourceEBGP
			ebgp = append(ebgp, rt)
		}
	}
	s.cfg.RIB.ReplaceSource(rib.SourceEBGP, ebgp)
	s.cfg.RIB.ReplaceSource(rib.SourceIBGP, ibgp)

	// Synchronize every Established peer's Adj-RIB-Out.
	for _, p := range peers {
		if p.state != StateEstablished {
			continue
		}
		s.syncAdjOutLocked(p, best)
	}
}

// exportTo computes the attributes of one best path as advertised to peer,
// or ok=false when export policy withholds it: never back to the peer it
// came from, never iBGP→iBGP (the full mesh carries it), and never to an
// eBGP peer whose AS is already on the path.
func (s *Speaker) exportTo(p *peer, c candidate) (PathAttrs, bool) {
	if c.peer == p {
		return PathAttrs{}, false
	}
	if c.peer != nil && c.peer.ibgp && p.ibgp {
		return PathAttrs{}, false
	}
	attrs := c.attrs
	if p.ibgp {
		// iBGP export: LOCAL_PREF attached, next-hop-self (the loopback or
		// border address this session runs from) so interior routers resolve
		// the hop through the IGP without knowing foreign border subnets.
		attrs.LocalPref = c.localPref()
		attrs.HasLP = true
		attrs.NextHop = p.localAddr
		if !attrs.NextHop.IsValid() {
			attrs.NextHop = s.localAddrFor(p.addr)
		}
		return attrs, true
	}
	out := attrs.Prepend(s.asn16())
	if out.HasLoop(uint16(p.remoteASN)) {
		return PathAttrs{}, false
	}
	out.NextHop = p.localAddr
	if !out.NextHop.IsValid() {
		out.NextHop = s.localAddrFor(p.addr)
	}
	out.HasLP = false
	out.LocalPref = 0
	if c.peer != nil {
		// MED is non-transitive: it only crosses the boundary of the AS
		// that set it (our locally originated IGP metric), never a further
		// eBGP hop.
		out.MED = 0
	}
	return out, true
}

func attrsEqual(a, b PathAttrs) bool {
	if a.Origin != b.Origin || a.NextHop != b.NextHop || a.MED != b.MED ||
		a.HasLP != b.HasLP || (a.HasLP && a.LocalPref != b.LocalPref) ||
		len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	return true
}

// syncAdjOutLocked diffs the desired Adj-RIB-Out against what the peer has
// been sent and emits the delta in sorted prefix order (deterministic wire
// traffic). Callers hold s.mu.
func (s *Speaker) syncAdjOutLocked(p *peer, best map[netip.Prefix]candidate) {
	desired := make(map[netip.Prefix]PathAttrs, len(best))
	for prefix, c := range best {
		if attrs, ok := s.exportTo(p, c); ok {
			desired[prefix] = attrs
		}
	}
	if p.advertised == nil {
		p.advertised = make(map[netip.Prefix]PathAttrs)
	}

	var withdraw, announce []netip.Prefix
	for prefix := range p.advertised {
		if _, ok := desired[prefix]; !ok {
			withdraw = append(withdraw, prefix)
		}
	}
	for prefix, attrs := range desired {
		if cur, ok := p.advertised[prefix]; !ok || !attrsEqual(cur, attrs) {
			announce = append(announce, prefix)
		}
	}
	sortPrefixes(withdraw)
	sortPrefixes(announce)

	// Withdrawals are chunked so a mass withdrawal (session loss upstream)
	// can never overflow the maximum message size — an oversized UPDATE
	// would be dropped whole by the receiver, which would then keep
	// forwarding to dead routes forever.
	const maxWithdrawPerUpdate = 128
	for len(withdraw) > 0 {
		chunk := withdraw
		if len(chunk) > maxWithdrawPerUpdate {
			chunk = chunk[:maxWithdrawPerUpdate]
		}
		withdraw = withdraw[len(chunk):]
		s.send(p, MarshalUpdate(Update{Withdrawn: chunk}))
		s.stats.UpdatesSent++
		for _, prefix := range chunk {
			delete(p.advertised, prefix)
		}
	}
	for _, prefix := range announce {
		attrs := desired[prefix]
		s.send(p, MarshalUpdate(Update{Attrs: attrs, NLRI: []netip.Prefix{prefix}}))
		s.stats.UpdatesSent++
		p.advertised[prefix] = attrs
	}
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

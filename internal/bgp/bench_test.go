package bgp

import (
	"fmt"
	"net/netip"
	"testing"

	"routeflow/internal/clock"
	"routeflow/internal/rib"
)

// benchSpeaker builds an unstarted speaker with nPeers Established eBGP
// sessions, each advertising nPrefixes routes, driving decideLocked
// synchronously (white-box: the decision process is the hot path, not the
// goroutine plumbing).
func benchSpeaker(b *testing.B, nPeers, nPrefixes int) *Speaker {
	b.Helper()
	r := rib.New()
	s, err := New(Config{
		ASN: 10, RouterID: netip.MustParseAddr("10.255.0.1"), RIB: r,
		Clock:        clock.NewFake(),
		Send:         func(src, dst netip.Addr, payload []byte) {},
		Redistribute: []rib.Source{rib.SourceConnected},
	})
	if err != nil {
		b.Fatal(err)
	}
	for pi := 0; pi < nPeers; pi++ {
		peerAddr := netip.AddrFrom4([4]byte{172, 16, byte(pi), 2})
		local := netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(pi), 1}), 30)
		if err := r.Add(rib.Route{Prefix: local, Iface: fmt.Sprintf("eth%d", pi+1),
			Source: rib.SourceConnected}); err != nil {
			b.Fatal(err)
		}
		p := &peer{
			addr: peerAddr, remoteASN: uint32(20 + pi), state: StateEstablished,
			localAddr: local.Addr(),
			adjIn:     make(map[netip.Prefix]PathAttrs, nPrefixes),
		}
		for i := 0; i < nPrefixes; i++ {
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
			p.adjIn[prefix] = PathAttrs{
				Origin:  OriginIGP,
				ASPath:  []uint16{uint16(20 + pi), uint16(100 + (pi+i)%7)},
				NextHop: peerAddr,
			}
		}
		s.peers[peerAddr] = p
	}
	return s
}

// BenchmarkBGPBestPath measures one full decision-process run — candidate
// collection across all peers, best-path selection per prefix, recursive
// next-hop resolution, RIB install and Adj-RIB-Out synchronization — at the
// scale of a border router in a mid-size internetwork.
func BenchmarkBGPBestPath(b *testing.B) {
	for _, size := range []struct{ peers, prefixes int }{
		{4, 64}, {8, 256},
	} {
		b.Run(fmt.Sprintf("peers=%d,prefixes=%d", size.peers, size.prefixes), func(b *testing.B) {
			s := benchSpeaker(b, size.peers, size.prefixes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.mu.Lock()
				s.decideLocked()
				s.mu.Unlock()
			}
		})
	}
}

// BenchmarkBGPRIBChurnRedistribute measures redistribution under IGP churn:
// every iteration swaps the OSPF route set (as an SPF run would) and runs
// the decision process that re-derives the locally originated prefixes and
// diffs every peer's Adj-RIB-Out.
func BenchmarkBGPRIBChurnRedistribute(b *testing.B) {
	s := benchSpeaker(b, 2, 16)
	s.cfg.Redistribute = append(s.cfg.Redistribute, rib.SourceOSPF)
	mkRoutes := func(gen int) []rib.Route {
		routes := make([]rib.Route, 41)
		for i := range routes {
			routes[i] = rib.Route{
				Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 17, byte(i), 0}), 30),
				NextHop: netip.AddrFrom4([4]byte{172, 16, 0, 2}),
				Iface:   "eth1", Metric: uint32(10 + gen),
			}
		}
		return routes
	}
	sets := [2][]rib.Route{mkRoutes(0), mkRoutes(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cfg.RIB.ReplaceSource(rib.SourceOSPF, sets[i%2])
		s.mu.Lock()
		s.decideLocked()
		s.mu.Unlock()
	}
}

package bgp

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"sync"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/rib"
)

// Default protocol timers (RFC 4271 suggested values) and damping knobs.
const (
	DefaultHoldTime     = 180 * time.Second
	DefaultConnectRetry = 5 * time.Second

	// Flap damping (RFC 2439, reduced to per-peer form): every loss of an
	// Established session adds DefaultDampPenalty; the penalty halves every
	// half-life; above the suppress threshold the peer's routes are excluded
	// from the decision process until the penalty decays below reuse.
	DefaultDampPenalty  = 1000.0
	DefaultDampSuppress = 2500.0
	DefaultDampReuse    = 750.0

	defaultLocalPref = 100
)

// State is the session FSM state of RFC 4271 §8.
type State int

// Session states. The TCP-like channels are connectionless-reliable, so
// Connect means "waiting for a route to the peer" (the transport-level
// precondition): eBGP sessions wait for the border interface, iBGP sessions
// wait for the IGP to learn the peer's loopback.
const (
	StateIdle State = iota
	StateConnect
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// SendFunc transmits one BGP message to dst, sourced from src (the session's
// local address). The owner (the VM) segments it onto the TCP-like channel
// and routes it via its RIB.
type SendFunc func(src, dst netip.Addr, payload []byte)

// Config configures a speaker (one bgpd process).
type Config struct {
	ASN      uint32
	RouterID netip.Addr
	RIB      *rib.RIB
	Clock    clock.Clock
	Send     SendFunc
	// LocalAddr resolves the local address of the session to a peer: the
	// border interface address for a directly connected eBGP peer, the
	// router's loopback for an iBGP peer. nil defaults to RouterID.
	LocalAddr func(peer netip.Addr) netip.Addr

	HoldTime     time.Duration // session liveness bound (keepalive = hold/3)
	ConnectRetry time.Duration

	// Redistribute lists the RIB sources pumped into BGP as locally
	// originated prefixes (the `redistribute ospf` / `redistribute
	// connected` statements of bgpd.conf).
	Redistribute []rib.Source
	// Networks are explicitly originated prefixes (`network` statements).
	Networks []netip.Prefix

	// Damping knobs; zero values take the defaults above. DampHalfLife
	// defaults to 2× hold time so suppressed peers are reusable on the same
	// order as session liveness.
	DampHalfLife time.Duration
	DampPenalty  float64
	DampSuppress float64
	DampReuse    float64
}

// SessionInfo is a read-only snapshot of one session.
type SessionInfo struct {
	Peer       netip.Addr
	RemoteASN  uint32
	IBGP       bool
	State      State
	Suppressed bool
	Penalty    float64
	Downs      uint64 // Established → down transitions
}

// Stats counts speaker activity.
type Stats struct {
	DecisionRuns    uint64
	UpdatesSent     uint64
	UpdatesReceived uint64
	OpensSent       uint64
}

type peer struct {
	addr      netip.Addr
	remoteASN uint32
	ibgp      bool
	localAddr netip.Addr

	state        State
	holdDeadline time.Time
	lastKA       time.Time
	retryAt      time.Time

	adjIn      map[netip.Prefix]PathAttrs
	advertised map[netip.Prefix]PathAttrs

	penalty    float64
	suppressed bool
	downs      uint64
}

type event struct {
	kind    int // evDeliver, evAddPeer, evRemovePeer
	src     netip.Addr
	payload []byte
	asn     uint32
}

const (
	evDeliver = iota
	evAddPeer
	evRemovePeer
)

// dampMemory is the flap-damping state of a deconfigured neighbor, decayed
// lazily when the neighbor returns.
type dampMemory struct {
	penalty    float64
	suppressed bool
	at         time.Time
	downs      uint64
}

// Speaker is one BGP-4 router process.
type Speaker struct {
	cfg Config
	clk clock.Clock

	// mu guards every field the query API reads (peer FSM state, stats).
	// All mutation happens on the loop goroutine.
	mu    sync.Mutex
	peers map[netip.Addr]*peer
	stats Stats
	// damp remembers flap-damping state across neighbor deconfiguration:
	// the discovery pipeline removes and re-adds a border neighbor on every
	// link flap, and a penalty that died with the peer struct would make
	// damping unreachable exactly in the case it exists for.
	damp map[netip.Addr]dampMemory

	// qmu guards the mailbox; Deliver and the RIB watcher enqueue here and
	// never touch mu, which keeps the lock order acyclic (loop: mu → rib;
	// rib watcher: rib → qmu).
	qmu      sync.Mutex
	queue    []event
	ribDirty bool
	wake     chan struct{}

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	lastTick time.Time
}

// New creates a speaker; Start launches its timers.
func New(cfg Config) (*Speaker, error) {
	if cfg.ASN == 0 {
		return nil, fmt.Errorf("bgp: ASN is required")
	}
	if cfg.ASN > 0xffff {
		// The wire format and AS paths are 2-byte (classic BGP-4, no
		// RFC 6793 capability): a silently truncated 4-byte ASN could alias
		// another AS mod 2^16 and false-positive the loop check.
		return nil, fmt.Errorf("bgp: ASN %d exceeds 16 bits (4-byte ASNs unsupported)", cfg.ASN)
	}
	if !cfg.RouterID.Is4() {
		return nil, fmt.Errorf("bgp: router ID %v is not IPv4", cfg.RouterID)
	}
	if cfg.RIB == nil {
		return nil, fmt.Errorf("bgp: RIB is required")
	}
	for _, n := range cfg.Networks {
		if !n.Addr().Is4() {
			// The wire format is IPv4-only; catching this here keeps the
			// panic out of the speaker goroutine's UPDATE marshalling.
			return nil, fmt.Errorf("bgp: network %v is not IPv4", n)
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("bgp: Send is required")
	}
	if cfg.HoldTime <= 0 {
		cfg.HoldTime = DefaultHoldTime
	}
	if cfg.ConnectRetry <= 0 {
		cfg.ConnectRetry = DefaultConnectRetry
	}
	if cfg.DampHalfLife <= 0 {
		cfg.DampHalfLife = 2 * cfg.HoldTime
	}
	if cfg.DampPenalty <= 0 {
		cfg.DampPenalty = DefaultDampPenalty
	}
	if cfg.DampSuppress <= 0 {
		cfg.DampSuppress = DefaultDampSuppress
	}
	if cfg.DampReuse <= 0 {
		cfg.DampReuse = DefaultDampReuse
	}
	return &Speaker{
		cfg:   cfg,
		clk:   cfg.Clock,
		peers: make(map[netip.Addr]*peer),
		damp:  make(map[netip.Addr]dampMemory),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}, nil
}

// ASN returns the configured AS number.
func (s *Speaker) ASN() uint32 { return s.cfg.ASN }

func (s *Speaker) asn16() uint16 { return uint16(s.cfg.ASN) }

// Start launches the speaker: the FSM/decision loop and the RIB watch that
// drives redistribution and next-hop re-resolution.
func (s *Speaker) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.cfg.RIB.Watch(func(ev rib.Event) {
		// BGP's own installs must not re-trigger the decision loop.
		if ev.Route.Source == rib.SourceEBGP || ev.Route.Source == rib.SourceIBGP {
			return
		}
		s.qmu.Lock()
		s.ribDirty = true
		s.qmu.Unlock()
		s.signal()
	})
	s.wg.Add(1)
	go s.loop()
}

// Stop halts the speaker.
func (s *Speaker) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		s.wg.Wait()
	}
}

func (s *Speaker) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Speaker) enqueue(ev event) {
	s.qmu.Lock()
	s.queue = append(s.queue, ev)
	s.qmu.Unlock()
	s.signal()
}

// AddNeighbor declares a session to peer in remoteASN. Idempotent: an
// existing session with the same AS is untouched; a changed AS resets it.
func (s *Speaker) AddNeighbor(addr netip.Addr, remoteASN uint32) {
	s.enqueue(event{kind: evAddPeer, src: addr, asn: remoteASN})
}

// RemoveNeighbor deconfigures the session (a CEASE notification is sent on
// a best-effort basis) and withdraws everything learned from it.
func (s *Speaker) RemoveNeighbor(addr netip.Addr) {
	s.enqueue(event{kind: evRemovePeer, src: addr})
}

// Deliver hands a received BGP message (TCP payload) to the speaker. src is
// the sender's address, which identifies the session. Never blocks: the
// mailbox is unbounded and drained by the speaker's own goroutine.
func (s *Speaker) Deliver(src netip.Addr, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.enqueue(event{kind: evDeliver, src: src, payload: cp})
}

// Sessions snapshots every configured session, sorted by peer address.
func (s *Speaker) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, SessionInfo{
			Peer: p.addr, RemoteASN: p.remoteASN, IBGP: p.ibgp,
			State: p.state, Suppressed: p.suppressed, Penalty: p.penalty,
			Downs: p.downs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Less(out[j].Peer) })
	return out
}

// State returns the FSM state of the session to peer.
func (s *Speaker) State(peerAddr netip.Addr) (State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[peerAddr]
	if !ok {
		return StateIdle, false
	}
	return p.state, true
}

// EstablishedCount counts sessions in Established.
func (s *Speaker) EstablishedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.peers {
		if p.state == StateEstablished {
			n++
		}
	}
	return n
}

// Statistics snapshots the activity counters.
func (s *Speaker) Statistics() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// tickInterval derives the loop granularity from the protocol timers.
func (s *Speaker) tickInterval() time.Duration {
	t := s.cfg.HoldTime / 6
	if s.cfg.ConnectRetry/2 < t {
		t = s.cfg.ConnectRetry / 2
	}
	if t < time.Millisecond {
		t = time.Millisecond
	}
	return t
}

func (s *Speaker) loop() {
	defer s.wg.Done()
	tick := s.clk.NewTicker(s.tickInterval())
	defer tick.Stop()
	s.lastTick = s.clk.Now()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
			s.drain()
		case <-tick.C():
			s.onTick()
		}
	}
}

// drain processes every queued event, then runs the decision process once if
// anything changed routing state.
func (s *Speaker) drain() {
	for {
		s.qmu.Lock()
		queue := s.queue
		s.queue = nil
		dirty := s.ribDirty
		s.ribDirty = false
		s.qmu.Unlock()
		if len(queue) == 0 && !dirty {
			return
		}
		s.mu.Lock()
		need := dirty
		for _, ev := range queue {
			switch ev.kind {
			case evDeliver:
				need = s.handleMessage(ev.src, ev.payload) || need
			case evAddPeer:
				need = s.addPeerLocked(ev.src, ev.asn) || need
			case evRemovePeer:
				need = s.removePeerLocked(ev.src) || need
			}
		}
		if need {
			s.decideLocked()
		}
		s.mu.Unlock()
	}
}

func (s *Speaker) addPeerLocked(addr netip.Addr, asn uint32) bool {
	if p, ok := s.peers[addr]; ok {
		if p.remoteASN == asn {
			return false
		}
		s.sessionDownLocked(p, false)
		p.remoteASN = asn
		p.ibgp = asn == s.cfg.ASN
		return true
	}
	p := &peer{
		addr: addr, remoteASN: asn, ibgp: asn == s.cfg.ASN,
		adjIn: make(map[netip.Prefix]PathAttrs),
	}
	// Restore remembered damping state, decayed by the time the neighbor
	// spent deconfigured.
	if m, ok := s.damp[addr]; ok {
		delete(s.damp, addr)
		m.penalty *= math.Exp2(-float64(s.clk.Now().Sub(m.at)) / float64(s.cfg.DampHalfLife))
		if m.penalty >= 1 {
			p.penalty = m.penalty
			p.suppressed = m.suppressed && m.penalty > s.cfg.DampReuse
			p.downs = m.downs
		}
	}
	s.peers[addr] = p
	return false
}

func (s *Speaker) removePeerLocked(addr netip.Addr) bool {
	p, ok := s.peers[addr]
	if !ok {
		return false
	}
	if p.state >= StateOpenSent {
		s.send(p, MarshalNotification(Notification{Code: NotifCease, Subcode: notifPeerDeconfig}))
	}
	was := p.state == StateEstablished
	if was {
		// Deconfiguring a live session is a flap from damping's point of
		// view: the discovery pipeline tears the neighbor down on every
		// border-link loss, and that must charge like a hold expiry would.
		s.sessionDownLocked(p, true)
	}
	if p.penalty >= 1 {
		s.damp[addr] = dampMemory{penalty: p.penalty, suppressed: p.suppressed,
			at: s.clk.Now(), downs: p.downs}
	}
	delete(s.peers, addr)
	return was
}

// sessionDownLocked resets a session to Idle. A loss of Established clears
// the Adj-RIB-In (withdraw-on-session-loss) and charges the damping penalty.
func (s *Speaker) sessionDownLocked(p *peer, charge bool) {
	if p.state == StateEstablished {
		p.downs++
		p.adjIn = make(map[netip.Prefix]PathAttrs)
		p.advertised = nil
		if charge {
			p.penalty += s.cfg.DampPenalty
			if p.penalty >= s.cfg.DampSuppress {
				p.suppressed = true
			}
		}
	}
	p.state = StateIdle
	p.retryAt = s.clk.Now().Add(s.cfg.ConnectRetry)
}

func (s *Speaker) send(p *peer, msg []byte) {
	src := p.localAddr
	if !src.IsValid() {
		src = s.localAddrFor(p.addr)
	}
	// Send outside no locks would be ideal; the transport is non-blocking
	// (the VM's originate path queues on ARP), so holding mu here is safe —
	// nothing in the send path re-enters the speaker synchronously.
	s.cfg.Send(src, p.addr, msg)
}

func (s *Speaker) localAddrFor(peerAddr netip.Addr) netip.Addr {
	if s.cfg.LocalAddr != nil {
		if a := s.cfg.LocalAddr(peerAddr); a.IsValid() {
			return a
		}
	}
	return s.cfg.RouterID
}

// reachable reports whether the RIB can route to the peer — the stand-in for
// "TCP connection established" on the connectionless-reliable channel.
func (s *Speaker) reachable(addr netip.Addr) bool {
	_, ok := s.cfg.RIB.Lookup(addr)
	return ok
}

func (s *Speaker) sendOpen(p *peer) {
	p.localAddr = s.localAddrFor(p.addr)
	s.send(p, MarshalOpen(Open{
		ASN:      s.asn16(),
		HoldTime: uint16(s.cfg.HoldTime / time.Second),
		RouterID: u32(s.cfg.RouterID),
	}))
	s.stats.OpensSent++
	p.holdDeadline = s.clk.Now().Add(s.cfg.HoldTime)
}

func u32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (s *Speaker) onTick() {
	now := s.clk.Now()
	s.mu.Lock()
	dt := now.Sub(s.lastTick)
	s.lastTick = now
	decay := math.Exp2(-float64(dt) / float64(s.cfg.DampHalfLife))
	need := false
	for _, p := range s.sortedPeersLocked() {
		if p.penalty > 0 {
			p.penalty *= decay
			if p.penalty < 1 {
				p.penalty = 0
			}
			if p.suppressed && p.penalty <= s.cfg.DampReuse {
				p.suppressed = false
				need = true
			}
		}
		switch p.state {
		case StateIdle:
			if !now.Before(p.retryAt) {
				p.state = StateConnect
			}
			if p.state != StateConnect {
				break
			}
			fallthrough
		case StateConnect:
			if s.reachable(p.addr) {
				s.sendOpen(p)
				p.state = StateOpenSent
			}
		case StateOpenSent, StateOpenConfirm:
			if now.After(p.holdDeadline) {
				s.send(p, MarshalNotification(Notification{Code: NotifHoldExpired}))
				s.sessionDownLocked(p, false)
			}
		case StateEstablished:
			if now.After(p.holdDeadline) {
				s.send(p, MarshalNotification(Notification{Code: NotifHoldExpired}))
				s.sessionDownLocked(p, true)
				need = true
				break
			}
			if now.Sub(p.lastKA) >= s.keepaliveInterval() {
				s.send(p, MarshalKeepalive())
				p.lastKA = now
			}
		}
	}
	if need {
		s.decideLocked()
	}
	s.mu.Unlock()
}

func (s *Speaker) keepaliveInterval() time.Duration {
	ka := s.cfg.HoldTime / 3
	if ka < time.Millisecond {
		ka = time.Millisecond
	}
	return ka
}

func (s *Speaker) sortedPeersLocked() []*peer {
	out := make([]*peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr.Less(out[j].addr) })
	return out
}

// handleMessage dispatches one received message; it reports whether routing
// state changed (a decision run is needed).
func (s *Speaker) handleMessage(src netip.Addr, payload []byte) bool {
	p, ok := s.peers[src]
	if !ok {
		return false // not a configured neighbor
	}
	msgType, body, err := ParseMessage(payload)
	if err != nil {
		return false
	}
	now := s.clk.Now()
	switch msgType {
	case MsgOpen:
		o, err := ParseOpen(body)
		if err != nil || o.ASN != uint16(p.remoteASN) {
			s.send(p, MarshalNotification(Notification{Code: NotifOpenError, Subcode: notifBadPeerAS}))
			s.sessionDownLocked(p, false)
			return true
		}
		switch p.state {
		case StateEstablished:
			// The peer restarted and is opening a fresh session: drop ours
			// (withdrawing its routes) and answer the open.
			s.sessionDownLocked(p, false)
			s.sendOpen(p)
			s.send(p, MarshalKeepalive())
			p.lastKA = now
			p.state = StateOpenConfirm
			return true
		case StateIdle, StateConnect:
			// Passive open: the peer reached us first.
			s.sendOpen(p)
			fallthrough
		case StateOpenSent:
			s.send(p, MarshalKeepalive())
			p.lastKA = now
			p.state = StateOpenConfirm
		case StateOpenConfirm:
			// Duplicate OPEN from a simultaneous open; harmless.
		}
		p.holdDeadline = now.Add(s.cfg.HoldTime)
		return false
	case MsgKeepalive:
		switch p.state {
		case StateOpenConfirm:
			p.state = StateEstablished
			p.advertised = nil // full table push on next decision
			p.holdDeadline = now.Add(s.cfg.HoldTime)
			return true
		case StateEstablished:
			p.holdDeadline = now.Add(s.cfg.HoldTime)
		}
		return false
	case MsgUpdate:
		if p.state != StateEstablished {
			return false
		}
		u, err := ParseUpdate(body)
		if err != nil {
			return false
		}
		s.stats.UpdatesReceived++
		p.holdDeadline = now.Add(s.cfg.HoldTime)
		changed := false
		for _, w := range u.Withdrawn {
			if _, ok := p.adjIn[w]; ok {
				delete(p.adjIn, w)
				changed = true
			}
		}
		if len(u.NLRI) > 0 {
			if u.Attrs.HasLoop(s.asn16()) {
				// RFC 4271: a replacement advertisement implicitly withdraws
				// the previous path, even when the new one is loop-rejected —
				// retaining the stale path would keep exporting a route the
				// peer no longer has.
				for _, n := range u.NLRI {
					if _, ok := p.adjIn[n]; ok {
						delete(p.adjIn, n)
						changed = true
					}
				}
			} else {
				for _, n := range u.NLRI {
					p.adjIn[n] = u.Attrs
					changed = true
				}
			}
		}
		return changed
	case MsgNotification:
		s.sessionDownLocked(p, p.state == StateEstablished)
		return true
	}
	return false
}

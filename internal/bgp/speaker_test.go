package bgp

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/rib"
)

// fabric is an in-memory message network between speakers: each speaker's
// addresses are registered, and Send delivers to whichever speaker owns the
// destination. Links can be cut to model transport loss.
type fabric struct {
	mu  sync.Mutex
	own map[netip.Addr]*Speaker
	cut map[[2]netip.Addr]bool // unordered pair, canonical low→high
}

func newFabric() *fabric {
	return &fabric{own: make(map[netip.Addr]*Speaker), cut: make(map[[2]netip.Addr]bool)}
}

func pairKey(a, b netip.Addr) [2]netip.Addr {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

func (f *fabric) register(s *Speaker, addrs ...netip.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		f.own[a] = s
	}
}

func (f *fabric) setCut(a, b netip.Addr, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut[pairKey(a, b)] = cut
}

func (f *fabric) send(src, dst netip.Addr, payload []byte) {
	f.mu.Lock()
	target := f.own[dst]
	blocked := f.cut[pairKey(src, dst)]
	f.mu.Unlock()
	if target != nil && !blocked {
		target.Deliver(src, payload)
	}
}

func waitFor(t *testing.T, clk *clock.Fake, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		clk.Advance(step)
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("condition not reached")
}

// testTimers are compressed but respect hold > 3×tick.
const (
	tHold  = 9 * time.Second
	tRetry = 2 * time.Second
	tStep  = time.Second
)

// mkSpeaker builds a speaker with a fresh RIB holding the given connected
// routes; redistributing Connected is the test stand-in for an IGP.
func mkSpeaker(t *testing.T, f *fabric, clk clock.Clock, asn uint32, rid string,
	connected map[string]string, localAddrs ...string) (*Speaker, *rib.RIB) {
	t.Helper()
	r := rib.New()
	for prefix, iface := range connected {
		if err := r.Add(rib.Route{Prefix: pfx(prefix), Iface: iface,
			Source: rib.SourceConnected}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{
		ASN: asn, RouterID: ip(rid), RIB: r, Clock: clk, Send: f.send,
		LocalAddr: func(peer netip.Addr) netip.Addr {
			for _, a := range localAddrs {
				addr := ip(a)
				for prefix := range connected {
					p := pfx(prefix)
					if p.Contains(addr) && p.Contains(peer) {
						return addr
					}
				}
			}
			return ip(rid)
		},
		HoldTime: tHold, ConnectRetry: tRetry,
		// Long half-life: the flap-damping test charges three penalties over
		// tens of fake seconds and must not lose them to decay in between.
		DampHalfLife: 600 * time.Second,
		Redistribute: []rib.Source{rib.SourceConnected},
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []netip.Addr{ip(rid)}
	for _, a := range localAddrs {
		addrs = append(addrs, ip(a))
	}
	f.register(s, addrs...)
	t.Cleanup(s.Stop)
	return s, r
}

// TestFSMWalk drives one speaker through every FSM state with crafted
// messages: Idle → Connect (peer unreachable), OpenSent (route appears),
// OpenConfirm (OPEN received), Established (KEEPALIVE received).
func TestFSMWalk(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	s, r := mkSpeaker(t, f, clk, 10, "10.255.0.1", nil, "172.16.0.1")
	s.Start()
	peerAddr := ip("172.16.0.2")
	s.AddNeighbor(peerAddr, 20)

	// No route to the peer: the session parks in Connect.
	waitFor(t, clk, tStep, func() bool {
		st, ok := s.State(peerAddr)
		return ok && st == StateConnect
	})

	// The border interface comes up: OPEN goes out, OpenSent.
	if err := r.Add(rib.Route{Prefix: pfx("172.16.0.0/30"), Iface: "eth1",
		Source: rib.SourceConnected}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, clk, tStep, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateOpenSent
	})

	// Peer's OPEN arrives: we acknowledge and move to OpenConfirm.
	s.Deliver(peerAddr, MarshalOpen(Open{ASN: 20, HoldTime: 9, RouterID: 2}))
	waitFor(t, clk, 0, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateOpenConfirm
	})

	// Peer's KEEPALIVE completes the handshake.
	s.Deliver(peerAddr, MarshalKeepalive())
	waitFor(t, clk, 0, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateEstablished
	})

	// A wrong-AS OPEN tears the session down.
	s.Deliver(peerAddr, MarshalOpen(Open{ASN: 99, HoldTime: 9, RouterID: 2}))
	waitFor(t, clk, 0, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateIdle
	})
}

// TestEBGPPairConverges runs two speakers across a border /30: both sessions
// reach Established and each learns the other's redistributed prefix with
// the correct AS path, next hop and administrative distance.
func TestEBGPPairConverges(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	a, ra := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1", "10.1.0.0/24": "eth2"}, "172.16.0.1")
	b, rb := mkSpeaker(t, f, clk, 20, "10.255.0.2",
		map[string]string{"172.16.0.0/30": "eth1", "10.2.0.0/24": "eth2"}, "172.16.0.2")
	a.Start()
	b.Start()
	a.AddNeighbor(ip("172.16.0.2"), 20)
	b.AddNeighbor(ip("172.16.0.1"), 10)

	waitFor(t, clk, tStep, func() bool {
		return a.EstablishedCount() == 1 && b.EstablishedCount() == 1
	})
	waitFor(t, clk, tStep, func() bool {
		rt, ok := rb.Lookup(ip("10.1.0.9"))
		return ok && rt.Source == rib.SourceEBGP
	})
	rt, _ := rb.Lookup(ip("10.1.0.9"))
	if rt.NextHop != ip("172.16.0.1") || rt.Iface != "eth1" {
		t.Fatalf("learned route = %v, want via 172.16.0.1 eth1", rt)
	}
	waitFor(t, clk, tStep, func() bool {
		rt, ok := ra.Lookup(ip("10.2.0.9"))
		return ok && rt.Source == rib.SourceEBGP
	})
}

// TestIBGPNextHopSelf: border router A1 peers eBGP with B and iBGP with
// interior A2 (loopback peering over a static stand-in for the IGP). A2 must
// learn B's prefix via iBGP with the next hop recursively resolved through
// its route to A1's loopback.
func TestIBGPNextHopSelf(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	// A1: loopback 10.255.0.1, border 172.16.0.1, intra-AS link 172.17.0.1.
	a1, ra1 := mkSpeaker(t, f, clk, 10, "10.255.0.1", map[string]string{
		"172.16.0.0/30": "eth1", "172.17.0.0/30": "eth2", "10.255.0.1/32": "lo",
	}, "172.16.0.1", "172.17.0.1")
	// A2: interior router, loopback 10.255.0.2.
	a2, ra2 := mkSpeaker(t, f, clk, 10, "10.255.0.2", map[string]string{
		"172.17.0.0/30": "eth1", "10.255.0.2/32": "lo",
	}, "172.17.0.2")
	// B: the external AS advertising 10.2.0.0/24.
	b, _ := mkSpeaker(t, f, clk, 20, "10.255.0.9", map[string]string{
		"172.16.0.0/30": "eth1", "10.2.0.0/24": "eth2",
	}, "172.16.0.2")

	// The "IGP": loopback reachability across the intra-AS link.
	if err := ra1.Add(rib.Route{Prefix: pfx("10.255.0.2/32"), NextHop: ip("172.17.0.2"),
		Iface: "eth2", Source: rib.SourceOSPF, Metric: 10}); err != nil {
		t.Fatal(err)
	}
	if err := ra2.Add(rib.Route{Prefix: pfx("10.255.0.1/32"), NextHop: ip("172.17.0.1"),
		Iface: "eth1", Source: rib.SourceOSPF, Metric: 10}); err != nil {
		t.Fatal(err)
	}

	a1.Start()
	a2.Start()
	b.Start()
	a1.AddNeighbor(ip("172.16.0.2"), 20) // eBGP to B
	a1.AddNeighbor(ip("10.255.0.2"), 10) // iBGP to A2
	a2.AddNeighbor(ip("10.255.0.1"), 10) // iBGP to A1
	b.AddNeighbor(ip("172.16.0.1"), 10)  // eBGP to A1

	waitFor(t, clk, tStep, func() bool {
		return a1.EstablishedCount() == 2 && a2.EstablishedCount() == 1 &&
			b.EstablishedCount() == 1
	})
	// A2 learns B's prefix via iBGP, next hop resolved through the IGP route
	// to A1's loopback.
	waitFor(t, clk, tStep, func() bool {
		rt, ok := ra2.Lookup(ip("10.2.0.9"))
		return ok && rt.Source == rib.SourceIBGP
	})
	rt, _ := ra2.Lookup(ip("10.2.0.9"))
	if rt.NextHop != ip("172.17.0.1") || rt.Iface != "eth1" {
		t.Fatalf("iBGP route = %v, want next hop 172.17.0.1 on eth1", rt)
	}
	// B sees AS 10 exactly once on the path (no iBGP re-prepending) — check
	// by ensuring B's route to A2's loopback redistribution exists and came
	// from AS 10.
	waitFor(t, clk, tStep, func() bool {
		sess := b.Sessions()
		return len(sess) == 1 && sess[0].State == StateEstablished
	})
}

// TestWithdrawOnSessionLoss cuts the transport between an Established eBGP
// pair: the hold timer must expire, the learned routes must leave the RIB,
// and restoring the transport must re-establish and re-learn.
func TestWithdrawOnSessionLoss(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	a, _ := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1", "10.1.0.0/24": "eth2"}, "172.16.0.1")
	b, rb := mkSpeaker(t, f, clk, 20, "10.255.0.2",
		map[string]string{"172.16.0.0/30": "eth1", "10.2.0.0/24": "eth2"}, "172.16.0.2")
	a.Start()
	b.Start()
	a.AddNeighbor(ip("172.16.0.2"), 20)
	b.AddNeighbor(ip("172.16.0.1"), 10)

	waitFor(t, clk, tStep, func() bool {
		_, ok := rb.Lookup(ip("10.1.0.9"))
		return ok
	})

	f.setCut(ip("172.16.0.1"), ip("172.16.0.2"), true)
	waitFor(t, clk, tStep, func() bool {
		st, _ := b.State(ip("172.16.0.1"))
		_, ok := rb.Lookup(ip("10.1.0.9"))
		return st != StateEstablished && !ok
	})
	if sess := b.Sessions(); sess[0].Downs == 0 {
		t.Fatal("session loss not counted")
	}

	f.setCut(ip("172.16.0.1"), ip("172.16.0.2"), false)
	waitFor(t, clk, tStep, func() bool {
		rt, ok := rb.Lookup(ip("10.1.0.9"))
		return ok && rt.Source == rib.SourceEBGP
	})
}

// TestFlapDamping: repeated session losses must drive the peer's penalty
// over the suppress threshold — its routes leave the decision process even
// while Established — and a calm period must decay the penalty below reuse,
// restoring the routes.
func TestFlapDamping(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	a, _ := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1", "10.1.0.0/24": "eth2"}, "172.16.0.1")
	b, rb := mkSpeaker(t, f, clk, 20, "10.255.0.2",
		map[string]string{"172.16.0.0/30": "eth1"}, "172.16.0.2")
	a.Start()
	b.Start()
	a.AddNeighbor(ip("172.16.0.2"), 20)
	b.AddNeighbor(ip("172.16.0.1"), 10)

	flap := func() {
		waitFor(t, clk, tStep, func() bool {
			_, ok := rb.Lookup(ip("10.1.0.9"))
			return ok && b.EstablishedCount() == 1
		})
		f.setCut(ip("172.16.0.1"), ip("172.16.0.2"), true)
		waitFor(t, clk, tStep, func() bool { return b.EstablishedCount() == 0 })
		f.setCut(ip("172.16.0.1"), ip("172.16.0.2"), false)
	}
	flap()
	flap()
	flap()
	// Three Established losses × 1000 penalty ≥ 2500: suppressed.
	waitFor(t, clk, tStep, func() bool {
		sess := b.Sessions()
		return len(sess) == 1 && sess[0].Suppressed
	})
	// Session re-establishes but the suppressed peer's routes stay out.
	waitFor(t, clk, tStep, func() bool { return b.EstablishedCount() == 1 })
	if _, ok := rb.Lookup(ip("10.1.0.9")); ok {
		t.Fatal("suppressed peer's route still installed")
	}
	// Calm decays the penalty below reuse; the route returns.
	waitFor(t, clk, tStep, func() bool {
		rt, ok := rb.Lookup(ip("10.1.0.9"))
		return ok && rt.Source == rib.SourceEBGP
	})
	if sess := b.Sessions(); sess[0].Suppressed {
		t.Fatal("peer still suppressed after decay")
	}
}

// TestBestPathSelection pins the decision order across two candidate paths
// for one prefix arriving from two eBGP peers: the shorter AS path wins, and
// on equal path length the lower peer address wins.
func TestBestPathSelection(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	// c learns 10.9.0.0/24 from two neighbors in different ASes.
	c, rc := mkSpeaker(t, f, clk, 30, "10.255.0.3", map[string]string{
		"172.16.0.0/30": "eth1", "172.16.0.4/30": "eth2",
	}, "172.16.0.1", "172.16.0.5")
	a, ra := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1"}, "172.16.0.2")
	b, rbr := mkSpeaker(t, f, clk, 20, "10.255.0.2",
		map[string]string{"172.16.0.4/30": "eth1"}, "172.16.0.6")
	// Both advertise the same prefix; b's copy carries a longer AS path
	// because it redistributes a route learned through a pretend extra AS —
	// emulate by giving b a static route and a having connected (same origin
	// rank), then checking the peer-address tie-break; then lengthen b's
	// path via a loop-free extra hop using a stub speaker.
	if err := ra.Add(rib.Route{Prefix: pfx("10.9.0.0/24"), Iface: "eth9",
		Source: rib.SourceConnected}); err != nil {
		t.Fatal(err)
	}
	if err := rbr.Add(rib.Route{Prefix: pfx("10.9.0.0/24"), Iface: "eth9",
		Source: rib.SourceConnected}); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	c.Start()
	c.AddNeighbor(ip("172.16.0.2"), 10)
	c.AddNeighbor(ip("172.16.0.6"), 20)
	a.AddNeighbor(ip("172.16.0.1"), 30)
	b.AddNeighbor(ip("172.16.0.5"), 30)

	waitFor(t, clk, tStep, func() bool { return c.EstablishedCount() == 2 })
	waitFor(t, clk, tStep, func() bool {
		_, ok := rc.Lookup(ip("10.9.0.9"))
		return ok
	})
	// Equal AS-path length (1 vs 1), equal origin/MED: lowest peer address
	// wins — 172.16.0.2 (AS 10).
	rt, _ := rc.Lookup(ip("10.9.0.9"))
	if rt.NextHop != ip("172.16.0.2") {
		t.Fatalf("best = %v, want via 172.16.0.2 (lowest peer address)", rt)
	}
	if runs := c.Statistics().DecisionRuns; runs == 0 {
		t.Fatal("no decision runs counted")
	}
}

// TestLoopedReadvertisementImplicitlyWithdraws: a peer re-advertising a
// prefix with a path that now contains our AS must erase the previously
// learned clean path (RFC 4271 implicit withdraw) — keeping it would export
// a route the peer no longer has and forward traffic into a loop.
func TestLoopedReadvertisementImplicitlyWithdraws(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	s, r := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1"}, "172.16.0.1")
	s.Start()
	peerAddr := ip("172.16.0.2")
	s.AddNeighbor(peerAddr, 20)

	// Handshake by hand.
	waitFor(t, clk, tStep, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateOpenSent
	})
	s.Deliver(peerAddr, MarshalOpen(Open{ASN: 20, HoldTime: 9, RouterID: 2}))
	s.Deliver(peerAddr, MarshalKeepalive())
	waitFor(t, clk, 0, func() bool {
		st, _ := s.State(peerAddr)
		return st == StateEstablished
	})

	clean := Update{
		Attrs: PathAttrs{Origin: OriginIGP, ASPath: []uint16{20},
			NextHop: ip("172.16.0.2")},
		NLRI: []netip.Prefix{pfx("10.9.0.0/24")},
	}
	s.Deliver(peerAddr, MarshalUpdate(clean))
	waitFor(t, clk, 0, func() bool {
		rt, ok := r.Lookup(ip("10.9.0.1"))
		return ok && rt.Source == rib.SourceEBGP
	})

	// Replacement advertisement whose path loops through us.
	looped := clean
	looped.Attrs.ASPath = []uint16{20, 30, 10}
	s.Deliver(peerAddr, MarshalUpdate(looped))
	waitFor(t, clk, 0, func() bool {
		_, ok := r.Lookup(ip("10.9.0.1"))
		return !ok
	})
}

// TestDampingSurvivesNeighborReconfiguration pins the system-level damping
// contract: the discovery pipeline removes and re-adds a border neighbor on
// every link flap, and the penalty must charge on the removal of an
// Established session and come back with the re-added peer — otherwise
// damping could never engage in the deployed system.
func TestDampingSurvivesNeighborReconfiguration(t *testing.T) {
	clk := clock.NewFake()
	f := newFabric()
	a, _ := mkSpeaker(t, f, clk, 10, "10.255.0.1",
		map[string]string{"172.16.0.0/30": "eth1", "10.1.0.0/24": "eth2"}, "172.16.0.1")
	b, rb := mkSpeaker(t, f, clk, 20, "10.255.0.2",
		map[string]string{"172.16.0.0/30": "eth1"}, "172.16.0.2")
	a.Start()
	b.Start()
	a.AddNeighbor(ip("172.16.0.2"), 20)
	b.AddNeighbor(ip("172.16.0.1"), 10)

	cycle := func() {
		waitFor(t, clk, tStep, func() bool { return b.EstablishedCount() == 1 })
		// The control plane deconfigures the live neighbor (link loss seen
		// by discovery), then re-adds it (link restored).
		b.RemoveNeighbor(ip("172.16.0.1"))
		waitFor(t, clk, 0, func() bool { return len(b.Sessions()) == 0 })
		b.AddNeighbor(ip("172.16.0.1"), 10)
	}
	cycle()
	cycle()
	cycle()
	// Three deconfigurations of Established sessions = three charges that
	// each survived the peer's removal: suppressed.
	waitFor(t, clk, tStep, func() bool {
		sess := b.Sessions()
		return len(sess) == 1 && sess[0].Suppressed && sess[0].Downs >= 3
	})
	waitFor(t, clk, tStep, func() bool { return b.EstablishedCount() == 1 })
	if _, ok := rb.Lookup(ip("10.1.0.9")); ok {
		t.Fatal("suppressed peer's route installed")
	}
	// Decay below reuse restores the routes.
	waitFor(t, clk, tStep, func() bool {
		rt, ok := rb.Lookup(ip("10.1.0.9"))
		return ok && rt.Source == rib.SourceEBGP
	})
}

package bgp

import (
	"net/netip"
	"reflect"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestOpenRoundTrip(t *testing.T) {
	in := Open{ASN: 65001, HoldTime: 180, RouterID: 0x0aff0001}
	msgType, body, err := ParseMessage(MarshalOpen(in))
	if err != nil || msgType != MsgOpen {
		t.Fatalf("ParseMessage: type=%d err=%v", msgType, err)
	}
	out, err := ParseOpen(body)
	if err != nil || out != in {
		t.Fatalf("open round trip: %+v err=%v", out, err)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	msgType, body, err := ParseMessage(MarshalKeepalive())
	if err != nil || msgType != MsgKeepalive || len(body) != 0 {
		t.Fatalf("keepalive: type=%d body=%d err=%v", msgType, len(body), err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := Notification{Code: NotifHoldExpired, Subcode: 0}
	msgType, body, err := ParseMessage(MarshalNotification(in))
	if err != nil || msgType != MsgNotification {
		t.Fatalf("ParseMessage: type=%d err=%v", msgType, err)
	}
	out, err := ParseNotification(body)
	if err != nil || out != in {
		t.Fatalf("notification round trip: %+v err=%v", out, err)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := Update{
		Withdrawn: []netip.Prefix{pfx("10.3.0.0/24"), pfx("10.4.0.0/16")},
		Attrs: PathAttrs{
			Origin:  OriginIncomplete,
			ASPath:  []uint16{64512, 64513},
			NextHop: ip("172.16.0.1"),
			MED:     20,
		},
		NLRI: []netip.Prefix{pfx("10.1.0.0/24"), pfx("10.2.128.0/17")},
	}
	msgType, body, err := ParseMessage(MarshalUpdate(in))
	if err != nil || msgType != MsgUpdate {
		t.Fatalf("ParseMessage: type=%d err=%v", msgType, err)
	}
	out, err := ParseUpdate(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("update round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestUpdateLocalPrefRoundTrip(t *testing.T) {
	in := Update{
		Attrs: PathAttrs{Origin: OriginIGP, NextHop: ip("10.255.0.1"),
			LocalPref: 200, HasLP: true},
		NLRI: []netip.Prefix{pfx("10.9.0.0/24")},
	}
	_, body, err := ParseMessage(MarshalUpdate(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseUpdate(body)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Attrs.HasLP || out.Attrs.LocalPref != 200 {
		t.Fatalf("local-pref lost: %+v", out.Attrs)
	}
	if len(out.Attrs.ASPath) != 0 {
		t.Fatalf("empty AS path decoded as %v", out.Attrs.ASPath)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	in := Update{Withdrawn: []netip.Prefix{pfx("10.1.0.0/24")}}
	_, body, err := ParseMessage(MarshalUpdate(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseUpdate(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.NLRI) != 0 || len(out.Withdrawn) != 1 || out.Withdrawn[0] != pfx("10.1.0.0/24") {
		t.Fatalf("withdraw-only round trip: %+v", out)
	}
}

func TestParseMessageRejects(t *testing.T) {
	if _, _, err := ParseMessage(make([]byte, headerLen-1)); err == nil {
		t.Fatal("short message accepted")
	}
	b := MarshalKeepalive()
	b[0] = 0 // corrupt marker
	if _, _, err := ParseMessage(b); err == nil {
		t.Fatal("bad marker accepted")
	}
	b = MarshalKeepalive()
	b[markerLen] = 0xff // absurd length
	if _, _, err := ParseMessage(b); err == nil {
		t.Fatal("bad length accepted")
	}
	if _, err := ParseOpen([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("version 3 accepted")
	}
	// NLRI without a NEXT_HOP attribute must be rejected.
	raw := MarshalUpdate(Update{NLRI: []netip.Prefix{pfx("10.0.0.0/8")}})
	_, body, err := ParseMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), body...)
	// Zero out the next-hop attribute type so the parser never sees one.
	for i := 0; i+2 < len(mut); i++ {
		if mut[i] == flagTransitive && mut[i+1] == attrNextHop && mut[i+2] == 4 {
			mut[i+1] = 200 // unknown attribute
		}
	}
	if _, err := ParseUpdate(mut); err == nil {
		t.Fatal("nlri without next-hop accepted")
	}
}

func TestASPathHelpers(t *testing.T) {
	a := PathAttrs{ASPath: []uint16{10, 20}}
	if !a.HasLoop(10) || a.HasLoop(30) {
		t.Fatalf("HasLoop wrong on %v", a.ASPath)
	}
	b := a.Prepend(5)
	if !reflect.DeepEqual(b.ASPath, []uint16{5, 10, 20}) {
		t.Fatalf("Prepend = %v", b.ASPath)
	}
	if !reflect.DeepEqual(a.ASPath, []uint16{10, 20}) {
		t.Fatalf("Prepend mutated receiver: %v", a.ASPath)
	}
}

// TestUpdateLongASPathSegmentation: paths beyond 255 ASes span several
// AS_SEQUENCE segments and the attribute uses its extended-length form; the
// round trip must be lossless (a composite of hundreds of ASes depends on
// this).
func TestUpdateLongASPathSegmentation(t *testing.T) {
	path := make([]uint16, 300)
	for i := range path {
		path[i] = uint16(i + 1)
	}
	in := Update{
		Attrs: PathAttrs{Origin: OriginIGP, ASPath: path, NextHop: ip("172.16.0.1")},
		NLRI:  []netip.Prefix{pfx("10.1.0.0/24")},
	}
	_, body, err := ParseMessage(MarshalUpdate(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseUpdate(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Attrs.ASPath, path) {
		t.Fatalf("as path of %d lost in segmentation: got %d entries",
			len(path), len(out.Attrs.ASPath))
	}
}

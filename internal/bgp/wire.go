// Package bgp implements the slice of BGP-4 (RFC 4271) that a RouteFlow
// VM's bgpd runs: the session FSM (Idle → Connect → OpenSent → OpenConfirm
// → Established) over the vnet's TCP-like channels, keepalive and hold
// timers on the injected clock, UPDATE generation with AS-path / next-hop /
// local-pref / MED attributes, the standard decision process feeding the
// shared RIB under the eBGP/iBGP administrative distances, IGP→BGP
// redistribution, withdraw-on-session-loss, and per-peer flap damping.
//
// The speaker is transport-agnostic and deterministic: every timer runs on
// an injected clock, messages leave in sorted prefix order, and all protocol
// state is mutated by a single goroutine consuming a mailbox — the same
// discipline the OSPF engine follows, which is what lets the chaos harness
// replay inter-domain scenarios byte-for-byte.
package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Port is the well-known BGP port of the TCP-like channel.
const Port = 179

// Version is the only protocol version spoken.
const Version = 4

// Message header: 16-byte all-ones marker, 2-byte length, 1-byte type.
const (
	markerLen    = 16
	headerLen    = markerLen + 3
	maxMessage   = 4096
	asPathSeqSeg = 2 // AS_SEQUENCE segment type
)

// Message types.
const (
	MsgOpen         uint8 = 1
	MsgUpdate       uint8 = 2
	MsgNotification uint8 = 3
	MsgKeepalive    uint8 = 4
)

// Path-attribute type codes (RFC 4271 §5).
const (
	attrOrigin    uint8 = 1
	attrASPath    uint8 = 2
	attrNextHop   uint8 = 3
	attrMED       uint8 = 4
	attrLocalPref uint8 = 5
)

// Attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
)

// Origin codes.
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// Notification error codes (the subset the speaker emits).
const (
	NotifOpenError    uint8 = 2
	NotifHoldExpired  uint8 = 4
	NotifCease        uint8 = 6
	notifBadPeerAS    uint8 = 2 // OPEN error: bad peer AS
	notifPeerDeconfig uint8 = 3 // cease: peer de-configured
)

// Open is the OPEN message body.
type Open struct {
	ASN      uint16
	HoldTime uint16 // whole seconds on the wire; informational here
	RouterID uint32
}

// PathAttrs carries the path attributes of one route.
type PathAttrs struct {
	Origin    uint8
	ASPath    []uint16 // one AS_SEQUENCE segment
	NextHop   netip.Addr
	MED       uint32
	LocalPref uint32
	HasLP     bool // LOCAL_PREF present (iBGP sessions)
}

// HasLoop reports whether asn already appears in the AS path — the receive-
// side loop check that makes rings of ASes converge instead of counting to
// infinity.
func (a PathAttrs) HasLoop(asn uint16) bool {
	for _, as := range a.ASPath {
		if as == asn {
			return true
		}
	}
	return false
}

// Prepend returns a copy of the attrs with asn prepended to the AS path —
// the eBGP export action.
func (a PathAttrs) Prepend(asn uint16) PathAttrs {
	path := make([]uint16, 0, len(a.ASPath)+1)
	path = append(path, asn)
	path = append(path, a.ASPath...)
	a.ASPath = path
	return a
}

// Update is the UPDATE message body.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     PathAttrs
	NLRI      []netip.Prefix
}

// Notification is the NOTIFICATION message body.
type Notification struct {
	Code, Subcode uint8
}

func appendHeader(b []byte, msgType uint8) []byte {
	for i := 0; i < markerLen; i++ {
		b = append(b, 0xff)
	}
	b = append(b, 0, 0, msgType) // length patched by finish
	return b
}

func finish(b []byte) []byte {
	binary.BigEndian.PutUint16(b[markerLen:], uint16(len(b)))
	return b
}

// MarshalOpen encodes an OPEN message.
func MarshalOpen(o Open) []byte {
	b := appendHeader(make([]byte, 0, headerLen+10), MsgOpen)
	b = append(b, Version)
	b = binary.BigEndian.AppendUint16(b, o.ASN)
	b = binary.BigEndian.AppendUint16(b, o.HoldTime)
	b = binary.BigEndian.AppendUint32(b, o.RouterID)
	b = append(b, 0) // no optional parameters
	return finish(b)
}

// MarshalKeepalive encodes a KEEPALIVE message (header only).
func MarshalKeepalive() []byte {
	return finish(appendHeader(make([]byte, 0, headerLen), MsgKeepalive))
}

// MarshalNotification encodes a NOTIFICATION message.
func MarshalNotification(n Notification) []byte {
	b := appendHeader(make([]byte, 0, headerLen+2), MsgNotification)
	b = append(b, n.Code, n.Subcode)
	return finish(b)
}

// appendPrefix encodes one NLRI/withdrawn prefix: length bit count, then the
// minimal number of address bytes.
func appendPrefix(b []byte, p netip.Prefix) []byte {
	bits := p.Bits()
	b = append(b, uint8(bits))
	a := p.Addr().As4()
	return append(b, a[:(bits+7)/8]...)
}

func readPrefix(b []byte) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: truncated prefix length")
	}
	bits := int(b[0])
	if bits > 32 {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: truncated prefix body")
	}
	var a [4]byte
	copy(a[:], b[1:1+n])
	p := netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
	return p, 1 + n, nil
}

// MarshalUpdate encodes an UPDATE message. Withdrawn-only updates omit the
// path attributes entirely, per the RFC.
func MarshalUpdate(u Update) []byte {
	b := appendHeader(make([]byte, 0, headerLen+64), MsgUpdate)

	withdrawnAt := len(b)
	b = append(b, 0, 0)
	for _, p := range u.Withdrawn {
		b = appendPrefix(b, p)
	}
	binary.BigEndian.PutUint16(b[withdrawnAt:], uint16(len(b)-withdrawnAt-2))

	attrsAt := len(b)
	b = append(b, 0, 0)
	if len(u.NLRI) > 0 {
		b = append(b, flagTransitive, attrOrigin, 1, u.Attrs.Origin)

		// AS_SEQUENCE segments hold at most 255 ASes each; a path from a
		// composite of hundreds of ASes spans several segments, and past 255
		// value bytes the attribute switches to its extended-length form
		// (flag 0x10) — both of which ParseUpdate already understands.
		const maxSegASes = 255
		segments := (len(u.Attrs.ASPath) + maxSegASes - 1) / maxSegASes
		pathLen := 2*segments + 2*len(u.Attrs.ASPath)
		if pathLen > 0xff {
			b = append(b, flagTransitive|0x10, attrASPath)
			b = binary.BigEndian.AppendUint16(b, uint16(pathLen))
		} else {
			b = append(b, flagTransitive, attrASPath, uint8(pathLen))
		}
		for path := u.Attrs.ASPath; len(path) > 0; {
			seg := path
			if len(seg) > maxSegASes {
				seg = seg[:maxSegASes]
			}
			path = path[len(seg):]
			b = append(b, asPathSeqSeg, uint8(len(seg)))
			for _, as := range seg {
				b = binary.BigEndian.AppendUint16(b, as)
			}
		}

		if u.Attrs.NextHop.IsValid() {
			nh := u.Attrs.NextHop.As4()
			b = append(b, flagTransitive, attrNextHop, 4)
			b = append(b, nh[:]...)
		}

		b = append(b, flagOptional, attrMED, 4)
		b = binary.BigEndian.AppendUint32(b, u.Attrs.MED)

		if u.Attrs.HasLP {
			b = append(b, flagTransitive, attrLocalPref, 4)
			b = binary.BigEndian.AppendUint32(b, u.Attrs.LocalPref)
		}
	}
	binary.BigEndian.PutUint16(b[attrsAt:], uint16(len(b)-attrsAt-2))

	for _, p := range u.NLRI {
		b = appendPrefix(b, p)
	}
	return finish(b)
}

// ParseMessage validates the header and returns the message type and body.
func ParseMessage(b []byte) (msgType uint8, body []byte, err error) {
	if len(b) < headerLen {
		return 0, nil, fmt.Errorf("bgp: message of %d bytes", len(b))
	}
	for _, m := range b[:markerLen] {
		if m != 0xff {
			return 0, nil, fmt.Errorf("bgp: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(b[markerLen:]))
	if length < headerLen || length > maxMessage || length > len(b) {
		return 0, nil, fmt.Errorf("bgp: bad length %d of %d", length, len(b))
	}
	return b[markerLen+2], b[headerLen:length], nil
}

// ParseOpen decodes an OPEN body.
func ParseOpen(b []byte) (Open, error) {
	if len(b) < 10 {
		return Open{}, fmt.Errorf("bgp: open of %d bytes", len(b))
	}
	if b[0] != Version {
		return Open{}, fmt.Errorf("bgp: version %d", b[0])
	}
	return Open{
		ASN:      binary.BigEndian.Uint16(b[1:]),
		HoldTime: binary.BigEndian.Uint16(b[3:]),
		RouterID: binary.BigEndian.Uint32(b[5:]),
	}, nil
}

// ParseNotification decodes a NOTIFICATION body.
func ParseNotification(b []byte) (Notification, error) {
	if len(b) < 2 {
		return Notification{}, fmt.Errorf("bgp: notification of %d bytes", len(b))
	}
	return Notification{Code: b[0], Subcode: b[1]}, nil
}

// ParseUpdate decodes an UPDATE body.
func ParseUpdate(b []byte) (Update, error) {
	var u Update
	if len(b) < 2 {
		return u, fmt.Errorf("bgp: update of %d bytes", len(b))
	}
	wLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if wLen > len(b) {
		return u, fmt.Errorf("bgp: withdrawn length %d of %d", wLen, len(b))
	}
	w := b[:wLen]
	for len(w) > 0 {
		p, n, err := readPrefix(w)
		if err != nil {
			return u, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		w = w[n:]
	}
	b = b[wLen:]
	if len(b) < 2 {
		return u, fmt.Errorf("bgp: update missing attribute length")
	}
	aLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if aLen > len(b) {
		return u, fmt.Errorf("bgp: attribute length %d of %d", aLen, len(b))
	}
	attrs := b[:aLen]
	nlri := b[aLen:]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return u, fmt.Errorf("bgp: truncated attribute header")
		}
		flags, code := attrs[0], attrs[1]
		var vLen, off int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return u, fmt.Errorf("bgp: truncated extended attribute")
			}
			vLen, off = int(binary.BigEndian.Uint16(attrs[2:])), 4
		} else {
			vLen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vLen {
			return u, fmt.Errorf("bgp: attribute %d of %d bytes", vLen, len(attrs)-off)
		}
		v := attrs[off : off+vLen]
		switch code {
		case attrOrigin:
			if vLen != 1 {
				return u, fmt.Errorf("bgp: origin of %d bytes", vLen)
			}
			u.Attrs.Origin = v[0]
		case attrASPath:
			for len(v) > 0 {
				if len(v) < 2 {
					return u, fmt.Errorf("bgp: truncated as-path segment")
				}
				segLen := int(v[1])
				if len(v) < 2+2*segLen {
					return u, fmt.Errorf("bgp: as-path segment of %d ases", segLen)
				}
				for i := 0; i < segLen; i++ {
					u.Attrs.ASPath = append(u.Attrs.ASPath,
						binary.BigEndian.Uint16(v[2+2*i:]))
				}
				v = v[2+2*segLen:]
			}
		case attrNextHop:
			if vLen != 4 {
				return u, fmt.Errorf("bgp: next-hop of %d bytes", vLen)
			}
			u.Attrs.NextHop = netip.AddrFrom4([4]byte(v))
		case attrMED:
			if vLen != 4 {
				return u, fmt.Errorf("bgp: med of %d bytes", vLen)
			}
			u.Attrs.MED = binary.BigEndian.Uint32(v)
		case attrLocalPref:
			if vLen != 4 {
				return u, fmt.Errorf("bgp: local-pref of %d bytes", vLen)
			}
			u.Attrs.LocalPref = binary.BigEndian.Uint32(v)
			u.Attrs.HasLP = true
		}
		attrs = attrs[off+vLen:]
	}
	for len(nlri) > 0 {
		p, n, err := readPrefix(nlri)
		if err != nil {
			return u, err
		}
		u.NLRI = append(u.NLRI, p)
		nlri = nlri[n:]
	}
	if len(u.NLRI) > 0 && !u.Attrs.NextHop.IsValid() {
		return u, fmt.Errorf("bgp: nlri without next-hop")
	}
	return u, nil
}

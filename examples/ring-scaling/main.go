// ring-scaling regenerates a compact version of the paper's Fig. 3: the
// time to configure RouteFlow automatically versus manually as the ring
// grows. Run cmd/rfbench for the full sweep.
package main

import (
	"log"
	"os"

	"routeflow"
)

func main() {
	report, err := routeflow.Run(routeflow.Fig3Run{Sizes: []int{4, 8, 12}},
		routeflow.RunTimeScale(200))
	if err != nil {
		log.Fatal(err)
	}
	report.Print(os.Stdout)
}

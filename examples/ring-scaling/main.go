// ring-scaling regenerates a compact version of the paper's Fig. 3: the
// time to configure RouteFlow automatically versus manually as the ring
// grows. Run cmd/rfbench for the full sweep.
package main

import (
	"log"
	"os"

	"routeflow"
)

func main() {
	rows, err := routeflow.RunFig3([]int{4, 8, 12},
		routeflow.ExperimentConfig{TimeScale: 200})
	if err != nil {
		log.Fatal(err)
	}
	routeflow.PrintFig3(os.Stdout, rows)
}

// paneu-video reproduces the paper's demonstration programmatically: the
// 28-node pan-European topology boots cold while a video clip streams from
// Lisbon toward Stockholm; the program reports when the stream reaches the
// client, configuration time included.
package main

import (
	"fmt"
	"log"
	"os"

	"routeflow"
)

func main() {
	g := routeflow.PanEuropean()
	lisbon, _ := g.NodeByName("Lisbon")
	stockholm, _ := g.NodeByName("Stockholm")

	fmt.Printf("pan-European topology: %d switches, %d links, diameter %d hops\n",
		g.NumNodes(), g.NumLinks(), g.Diameter())
	fmt.Println("starting cold; streaming Lisbon -> Stockholm...")

	report, err := routeflow.Run(
		routeflow.DemoRun{Streams: [][2]int{{lisbon.ID, stockholm.ID}}},
		routeflow.RunTimeScale(100))
	if err != nil {
		log.Fatal(err)
	}
	report.Print(os.Stdout)
}

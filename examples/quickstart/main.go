// Quickstart: bring a cold 4-switch ring from zero to fully routed with the
// automatic-configuration framework, then prove connectivity with a ping
// between two hosts on opposite sides of the ring.
package main

import (
	"fmt"
	"log"
	"time"

	"routeflow"
)

func main() {
	// A 4-switch ring with hosts at nodes 0 and 2. The 200× clock
	// compresses the protocol timers (OSPF hellos, VM boot) so the example
	// finishes in well under a second of wall time; all printed durations
	// are protocol time.
	d, err := routeflow.New(routeflow.Ring(4),
		routeflow.WithTimeScale(200),
		routeflow.WithHosts(0, 2),
		routeflow.WithTimers(routeflow.DefaultExperimentTimers()),
		routeflow.WithBootDelay(2*time.Second),
		routeflow.WithTelemetry(), // streaming per-flow/per-link stats
	)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if err := d.Start(); err != nil {
		log.Fatal(err)
	}

	configured, err := d.AwaitConfigured(10 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all 4 switches configured (VMs created, mapped, addressed) in %v\n",
		configured.Round(10*time.Millisecond))

	converged, err := d.AwaitConverged(10 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OSPF fully converged in %v\n", converged.Round(10*time.Millisecond))

	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	deadline := time.Now().Add(30 * time.Second)
	for {
		rtt, err := h0.Ping(h2.Addr(), 5*time.Second)
		if err == nil {
			fmt.Printf("ping %v -> %v: rtt %v (routed by OSPF-installed flows)\n",
				h0.Addr(), h2.Addr(), rtt.Round(time.Millisecond))
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("ping never succeeded: %v", err)
		}
	}

	// The ping traffic was monitored: telemetry places each host-pair flow
	// on exactly one switch along its path and aggregates the exported
	// counters into rolling views (see `go run ./cmd/rfstats` for a live
	// version of this dump). Exports are periodic, so poll briefly until
	// the ping's packets have flowed through the pipeline.
	snap := d.TelemetrySnapshot()
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		if len(snap.Flows) > 0 && snap.Flows[0].Packets > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
		snap = d.TelemetrySnapshot()
	}
	for _, f := range snap.Flows {
		fmt.Printf("telemetry: flow %d→%d observed at switch %d: %d packets, %d bytes\n",
			f.SrcNode, f.DstNode, f.Monitor, f.Packets, f.Bytes)
	}

	fmt.Printf("manual configuration of the same network: %v (paper's model)\n",
		routeflow.DefaultManualModel().Total(4))
}

// failure-recovery goes beyond the paper: after the framework configures a
// ring automatically, the network is subjected to a scripted chaos scenario
// — a link dies (traffic reroutes), the surviving path is also cut (an
// honest partition), everything heals — with the harness's invariants
// (no-blackhole, no-loop, flow-table consistency) checked at every quiesce
// point. It demonstrates that the automatically built control plane keeps
// operating the network through failures, and reports them honestly.
package main

import (
	"fmt"
	"log"
	"os"

	"routeflow"
)

func main() {
	spec := routeflow.ScenarioSpec{
		Name:      "example-failure-recovery",
		Topology:  routeflow.Ring(4),
		HostNodes: []int{0, 2},
		Seed:      1,
		Faults: []routeflow.ScenarioFault{
			// Cut one link: OSPF detects the dead neighbor, reconverges, and
			// the RF-controller reinstalls flows for the surviving path.
			{Kind: routeflow.FaultLinkDown, Link: 0},
			// Cut the surviving path too: the network partitions. The harness
			// must converge *as a partition* — hosts 0 and 2 honestly
			// unreachable — rather than wedge or pretend.
			{Kind: routeflow.FaultLinkDown, Link: 2},
			// Heal both links; full connectivity must return.
			{Kind: routeflow.FaultLinkUp, Link: 0, NoSettle: true},
			{Kind: routeflow.FaultLinkUp, Link: 2},
		},
	}
	res, err := routeflow.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	routeflow.PrintScenario(os.Stdout, res)
	if code := routeflow.ScenarioExitCode(res, err); code != 0 {
		os.Exit(code)
	}
	fmt.Println("failure, partition and recovery all handled — control plane stayed honest")
}

// failure-recovery goes beyond the paper: after the framework configures a
// ring automatically, one link is cut. OSPF detects the dead neighbor,
// reconverges, the RF-controller reinstalls flows for the surviving path,
// and traffic recovers — demonstrating that the automatically built control
// plane keeps operating the network after configuration.
package main

import (
	"fmt"
	"log"
	"time"

	"routeflow"
)

func main() {
	d, err := routeflow.NewDeployment(routeflow.Options{
		Topology:  routeflow.Ring(4),
		Clock:     routeflow.ScaledClock(200),
		HostNodes: []int{0, 2},
		Timers:    routeflow.DefaultExperimentTimers(),
		BootDelay: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	if _, err := d.AwaitConverged(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network converged after %v\n", d.Elapsed().Round(10*time.Millisecond))

	h0, _ := d.Host(0)
	h2, _ := d.Host(2)
	mustPing := func(phase string, budget time.Duration) {
		deadline := time.Now().Add(budget)
		for {
			if rtt, err := h0.Ping(h2.Addr(), 5*time.Second); err == nil {
				fmt.Printf("%s: ping ok (rtt %v)\n", phase, rtt.Round(time.Millisecond))
				return
			}
			if time.Now().After(deadline) {
				log.Fatalf("%s: no connectivity", phase)
			}
		}
	}
	mustPing("before failure", 30*time.Second)

	fmt.Println("cutting link 0 (between switches 0 and 1)...")
	if err := d.SetLinkUp(0, false); err != nil {
		log.Fatal(err)
	}
	// OSPF needs a dead interval to notice, then SPF + flow reinstall.
	mustPing("after failure (rerouted)", 60*time.Second)

	fmt.Println("restoring the link...")
	if err := d.SetLinkUp(0, true); err != nil {
		log.Fatal(err)
	}
	mustPing("after restore", 60*time.Second)
}

package routeflow

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fastExperiment compresses time hard so facade tests stay quick.
func fastExperiment() ExperimentConfig {
	return ExperimentConfig{TimeScale: 400}
}

func TestFacadeTopologies(t *testing.T) {
	if Ring(8).NumNodes() != 8 || PanEuropean().NumNodes() != 28 {
		t.Fatal("topology constructors broken")
	}
	if Line(3).NumLinks() != 2 || Star(4).NumLinks() != 3 || Grid(2, 2).NumLinks() != 4 {
		t.Fatal("generators broken")
	}
	if !Random(10, 15, 1).Connected() {
		t.Fatal("random disconnected")
	}
	if DPIDForNode(3) != 4 {
		t.Fatal("dpid mapping")
	}
	if HostSubnet(1).String() != "10.2.0.0/24" {
		t.Fatal("host subnet")
	}
}

func TestManualModelFacade(t *testing.T) {
	if DefaultManualModel().Total(28) != 7*time.Hour {
		t.Fatal("manual model")
	}
}

func TestRunFig3PointShape(t *testing.T) {
	row, err := RunFig3Point(4, fastExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if row.Switches != 4 {
		t.Fatalf("row = %+v", row)
	}
	if row.Auto <= 0 || row.AutoRouted < row.Auto {
		t.Fatalf("auto times inconsistent: %+v", row)
	}
	if row.Manual != 4*15*time.Minute {
		t.Fatalf("manual = %v", row.Manual)
	}
	// The paper's central claim: automatic is dramatically faster.
	if row.AutoRouted >= row.Manual {
		t.Fatalf("automatic (%v) not faster than manual (%v)", row.AutoRouted, row.Manual)
	}
}

func TestPrintFig3(t *testing.T) {
	var buf bytes.Buffer
	PrintFig3(&buf, []Fig3Row{{Switches: 4, Auto: 3 * time.Second,
		AutoRouted: 20 * time.Second, Manual: time.Hour}})
	out := buf.String()
	if !strings.Contains(out, "switches") || !strings.Contains(out, "180x") {
		t.Fatalf("fig3 output:\n%s", out)
	}
}

func TestDashboardFacade(t *testing.T) {
	dash := NewDashboard(Ring(3))
	if dash.GreenCount() != 0 || len(dash.Statuses()) != 3 {
		t.Fatal("dashboard facade broken")
	}
}

func TestExperimentConfigDefaults(t *testing.T) {
	c := ExperimentConfig{}.withDefaults()
	if c.TimeScale != 50 || c.BootDelay != 2*time.Second ||
		c.Timers.Hello != 10*time.Second || c.ProbeInterval != time.Second {
		t.Fatalf("defaults = %+v", c)
	}
}

package routeflow

// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//	Fig. 3 (configuration time vs. ring size)
//	    BenchmarkFig3AutoConfigure/ring-N  — automatic, measured end to end
//	    BenchmarkFig3ManualModel           — the paper's manual model
//	§3 demonstration (28-node pan-European topology, video within ~4 min)
//	    BenchmarkDemoPanEuropeanVideo
//	Ablations (design choices called out in DESIGN.md)
//	    BenchmarkAblationFlowVisor vs BenchmarkAblationMergedController
//	Micro benchmarks of the substrates
//	    BenchmarkOpenFlow*, BenchmarkMatch*, BenchmarkRIB*, BenchmarkLLDP*,
//	    BenchmarkManualModelEval
//
// The deployment benchmarks report protocol time per phase via custom
// metrics (protocol-seconds, not wall time): with the default 50× scale a
// ring-28 iteration takes ~1-2 s of wall time.

import (
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"math"

	"routeflow/internal/core"
	"routeflow/internal/openflow"
	"routeflow/internal/pkt"
	"routeflow/internal/rib"
	"routeflow/internal/te"
	"routeflow/internal/telemetry"
	"routeflow/internal/topo"
)

func benchExperiment() ExperimentConfig {
	// TimeScale 25: protocol timers compress to ≥40ms of wall time, which
	// keeps the emulation honest on loaded single-core CI runners (at 100×,
	// OSPF hellos landed every 10ms wall — scheduler noise read as packet
	// loss and the measurement became a load test of the host).
	return ExperimentConfig{TimeScale: 25}
}

// BenchmarkFig3AutoConfigure regenerates the "automatic" series of Fig. 3.
func BenchmarkFig3AutoConfigure(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28} {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			var cfgTotal, routedTotal time.Duration
			for i := 0; i < b.N; i++ {
				row, err := RunFig3Point(n, benchExperiment())
				if err != nil {
					b.Fatal(err)
				}
				cfgTotal += row.Auto
				routedTotal += row.AutoRouted
			}
			b.ReportMetric(cfgTotal.Seconds()/float64(b.N), "proto-s/config")
			b.ReportMetric(routedTotal.Seconds()/float64(b.N), "proto-s/converged")
		})
	}
}

// BenchmarkFig3ManualModel regenerates the "manual" series of Fig. 3.
func BenchmarkFig3ManualModel(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28} {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			var total time.Duration
			m := DefaultManualModel()
			for i := 0; i < b.N; i++ {
				total = m.Total(n)
			}
			b.ReportMetric(total.Seconds(), "proto-s/manual")
		})
	}
}

// BenchmarkDemoPanEuropeanVideo regenerates the §3 demonstration metric:
// cold start to video at the remote client on the 28-node topology.
func BenchmarkDemoPanEuropeanVideo(b *testing.B) {
	g := PanEuropean()
	lisbon, _ := g.NodeByName("Lisbon")
	stockholm, _ := g.NodeByName("Stockholm")
	var video, configured time.Duration
	for i := 0; i < b.N; i++ {
		res, err := RunDemo(benchExperiment(), lisbon.ID, stockholm.ID)
		if err != nil {
			b.Fatal(err)
		}
		video += res.FirstVideo
		configured += res.Configured
	}
	b.ReportMetric(configured.Seconds()/float64(b.N), "proto-s/configured")
	b.ReportMetric(video.Seconds()/float64(b.N), "proto-s/video")
}

// BenchmarkDemoPanEuropeanVideoMultiStream runs the §3 demonstration with
// four concurrent video streams crossing the 28-node core from t=0 — the
// scenario the two-tier dataplane exists for: every hop is a cached
// exact-match lookup instead of a mutex-guarded classifier scan. It reports
// the protocol time until all four clients have video plus aggregate
// delivery quality.
func BenchmarkDemoPanEuropeanVideoMultiStream(b *testing.B) {
	g := PanEuropean()
	pairs := make([][2]int, 0, 4)
	for _, sc := range [][2]string{
		{"Lisbon", "Stockholm"},
		{"Dublin", "Athens"},
		{"Oslo", "Rome"},
		{"Glasgow", "Budapest"},
	} {
		srv, ok1 := g.NodeByName(sc[0])
		cli, ok2 := g.NodeByName(sc[1])
		if !ok1 || !ok2 {
			b.Fatalf("unknown city pair %v", sc)
		}
		pairs = append(pairs, [2]int{srv.ID, cli.ID})
	}
	var allVideo, configured time.Duration
	var frames, gaps uint64
	for i := 0; i < b.N; i++ {
		res, err := RunDemoMultiStream(benchExperiment(), pairs)
		if err != nil {
			b.Fatal(err)
		}
		allVideo += res.AllVideo
		configured += res.Configured
		for _, st := range res.Streams {
			frames += st.VideoStats.Frames
			gaps += st.VideoStats.Gaps
		}
	}
	b.ReportMetric(configured.Seconds()/float64(b.N), "proto-s/configured")
	b.ReportMetric(allVideo.Seconds()/float64(b.N), "proto-s/video-all")
	b.ReportMetric(float64(frames)/float64(b.N), "frames")
	b.ReportMetric(float64(gaps)/float64(b.N), "gaps")
}

// BenchmarkAblationFlowVisor measures configuration time with the slicing
// proxy in the control path (the paper's deployment).
func BenchmarkAblationFlowVisor(b *testing.B) {
	benchAblation(b, false)
}

// BenchmarkAblationMergedController removes FlowVisor and merges both
// controller applications into one process (the design alternative §2
// argues against for load sharing).
func BenchmarkAblationMergedController(b *testing.B) {
	benchAblation(b, true)
}

func benchAblation(b *testing.B, merged bool) {
	cfg := benchExperiment()
	cfg.NoFlowVisor = merged
	var total time.Duration
	for i := 0; i < b.N; i++ {
		row, err := RunFig3Point(8, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += row.AutoRouted
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "proto-s/converged")
}

// --- Micro benchmarks of the protocol substrates ---

func benchFlowMod() *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = 0x0800
	m.SetNwDstPrefix(netip.MustParsePrefix("10.1.2.0/24"))
	return &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 124,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			&openflow.ActionSetDlSrc{Addr: pkt.LocalMAC(1)},
			&openflow.ActionSetDlDst{Addr: pkt.LocalMAC(2)},
			&openflow.ActionOutput{Port: 3},
		},
	}
}

// BenchmarkOpenFlowMarshalFlowMod measures the control channel's hot encode
// path: AppendTo into a reused buffer, as the batched write loops do. Zero
// allocs/op is the contract (see TestAppendToFlowModAllocBudget).
func BenchmarkOpenFlowMarshalFlowMod(b *testing.B) {
	fm := benchFlowMod()
	buf := fm.AppendTo(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = fm.AppendTo(buf[:0])
	}
}

// BenchmarkOpenFlowMarshalFlowModAlloc measures the allocating compatibility
// wrapper (one fresh slice per message).
func BenchmarkOpenFlowMarshalFlowModAlloc(b *testing.B) {
	fm := benchFlowMod()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = openflow.Marshal(fm)
	}
}

func BenchmarkOpenFlowUnmarshalFlowMod(b *testing.B) {
	wire := openflow.Marshal(benchFlowMod())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := openflow.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenFlowWriteBatch measures coalescing a 32-flow-mod burst into
// one write, per message.
func BenchmarkOpenFlowWriteBatch(b *testing.B) {
	fm := benchFlowMod()
	mw := openflow.NewMessageWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			mw.Append(fm)
		}
		if err := mw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenFlowDecoder measures steady-state stream decode with the
// per-connection scratch buffer.
func BenchmarkOpenFlowDecoder(b *testing.B) {
	wire := openflow.Marshal(benchFlowMod())
	r := &repeatReader{frame: wire}
	dec := openflow.NewDecoder(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// repeatReader serves the same frame forever.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

func benchUDPFrame() []byte {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.9.0.100")
	u := &pkt.UDP{SrcPort: 5004, DstPort: 5004, Payload: make([]byte, 1200)}
	ip := &pkt.IPv4{TTL: 64, Proto: pkt.ProtoUDP, Src: src, Dst: dst,
		Payload: u.Marshal(src, dst)}
	f := &pkt.Frame{Dst: pkt.LocalMAC(2), Src: pkt.LocalMAC(1),
		Type: pkt.EtherTypeIPv4, Payload: ip.Marshal()}
	return f.Marshal()
}

// BenchmarkMatchExtractKey measures dataplane packet classification.
func BenchmarkMatchExtractKey(b *testing.B) {
	frame := benchUDPFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := openflow.ExtractKey(1, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchCovers measures one flow-table match evaluation.
func BenchmarkMatchCovers(b *testing.B) {
	key, _ := openflow.ExtractKey(1, benchUDPFrame())
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType
	m.DlType = 0x0800
	m.SetNwDstPrefix(netip.MustParsePrefix("10.9.0.0/24"))
	for i := 0; i < b.N; i++ {
		if !m.Covers(&key) {
			b.Fatal("must match")
		}
	}
}

// BenchmarkRIBLookup measures longest-prefix match in a VM's RIB at the
// scale of the 28-node demo (41 link subnets + host routes).
func BenchmarkRIBLookup(b *testing.B) {
	r := rib.New()
	for i := 0; i < 64; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 30)
		r.Add(rib.Route{Prefix: prefix, NextHop: netip.MustParseAddr("172.16.0.2"),
			Iface: "eth1", Source: rib.SourceOSPF, Metric: uint32(i)})
	}
	probe := netip.MustParseAddr("172.16.40.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(probe); !ok {
			b.Fatal("missing route")
		}
	}
}

// BenchmarkRIBReplaceSource measures one SPF→RIB synchronization.
func BenchmarkRIBReplaceSource(b *testing.B) {
	r := rib.New()
	routes := make([]rib.Route, 41)
	for i := range routes {
		routes[i] = rib.Route{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 30),
			NextHop: netip.MustParseAddr("172.16.0.2"),
			Iface:   "eth1", Metric: uint32(i),
		}
	}
	for i := 0; i < b.N; i++ {
		r.ReplaceSource(rib.SourceOSPF, routes)
	}
}

// BenchmarkLLDPRoundTrip measures one discovery probe encode+decode.
func BenchmarkLLDPRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := pkt.NewLLDP(uint64(i), uint16(i%48+1), 60)
		got, err := pkt.DecodeLLDP(l.Marshal())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := got.Origin(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoConfigureSharded measures the horizontal-scaling dimension
// of the distributed RF-controller: cold boot of an ASRing(4, 3) — 12
// switches in 4 shard groups — to every switch configured, with the
// controller run as 1, 2 and 4 replicas. RPCApplyDelay models the paper's
// per-message RPC server work (VM cloning, config-file writes); it is held
// inside each replica's apply lock, so one controller serializes it across
// all 12 switches while 4 replicas each serve only their own shard.
// scripts/bench.sh records the series and benchcheck gates the
// replicas=1 / replicas=4 ratio at ≥1.5×.
func BenchmarkAutoConfigureSharded(b *testing.B) {
	// Protocol-time apply cost per configuration message: large enough to
	// dominate boot and discovery, so the measurement isolates the
	// serialized work sharding divides.
	const applyDelay = 400 * time.Millisecond
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			var cfgTotal time.Duration
			for i := 0; i < b.N; i++ {
				cfg := benchExperiment().withDefaults()
				cfg.Cluster = ClusterSpec{Replicas: replicas}
				cfg.RPCApplyDelay = applyDelay
				d, err := cfg.deploy(ASRing(4, 3), nil, ScaledClock(cfg.TimeScale))
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Start(); err != nil {
					d.Close()
					b.Fatal(err)
				}
				t, err := d.AwaitConfigured(30 * time.Minute)
				d.Close()
				if err != nil {
					b.Fatal(err)
				}
				cfgTotal += t
			}
			b.ReportMetric(cfgTotal.Seconds()/float64(b.N), "proto-s/config")
		})
	}
}

// BenchmarkManualModelEval measures the (trivial) manual-model evaluation,
// for completeness of the Fig. 3 pair.
func BenchmarkManualModelEval(b *testing.B) {
	m := DefaultManualModel()
	for i := 0; i < b.N; i++ {
		_ = m.Total(28)
	}
}

// BenchmarkMultiASAutoConfigure regenerates the inter-domain scaling series:
// cold start to full inter-domain convergence on a ring of ring-shaped ASes
// (the Fig. 3 methodology lifted to eBGP-joined domains).
func BenchmarkMultiASAutoConfigure(b *testing.B) {
	for _, ases := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("ases-%d", ases), func(b *testing.B) {
			var cfgTotal, convTotal time.Duration
			for i := 0; i < b.N; i++ {
				row, err := RunMultiASPoint(ases, 3, benchExperiment())
				if err != nil {
					b.Fatal(err)
				}
				cfgTotal += row.Configured
				convTotal += row.Converged
			}
			b.ReportMetric(cfgTotal.Seconds()/float64(b.N), "proto-s/config")
			b.ReportMetric(convTotal.Seconds()/float64(b.N), "proto-s/converged")
		})
	}
}

// BenchmarkTEMaxLinkUtilization measures the headline traffic-engineering
// win: the maximum link utilization a Zipf-skewed demand matrix produces on
// a 4-ary fat tree under plain shortest-path placement (mode=sp) versus the
// online optimizer's equal-cost re-placements (mode=te), reported as the
// "maxutil" metric. The computation is the controller's own model —
// telemetry placements, per-link charging, the te.Engine planning loop run
// to a fixed point — so the metric is deterministic across machines.
// scripts/benchcheck.go gates the within-snapshot te/sp ratio at <= 0.75:
// the optimizer must shed at least a quarter of the peak link load.
func BenchmarkTEMaxLinkUtilization(b *testing.B) {
	g := FatTree(4)
	edges := FatTreeEdges(4)
	var pairs [][2]int
	for _, s := range edges {
		for _, t := range edges {
			if s != t {
				pairs = append(pairs, [2]int{s, t})
			}
		}
	}
	// Zipf demand: pair i carries topRate/(i+1)^skew. The scale puts the
	// hottest shortest-path links well past the hot threshold while keeping
	// every single pair small enough to fit under the relief watermark on a
	// colder path — the regime the optimizer exists for.
	const (
		capacity = 1.0
		topRate  = 0.30
		skew     = 0.9
		rounds   = 64
	)
	rates := make([]float64, len(pairs))
	for i := range rates {
		rates[i] = topRate / math.Pow(float64(i+1), skew)
	}
	up := func(topo.Link) bool { return true }

	maxUtil := func(assigned map[[2]int][]int) float64 {
		pls := telemetry.ComputePlacementsAssigned(g, pairs, up, assigned)
		load := make(map[telemetry.LinkKey]float64)
		for i, pl := range pls {
			for _, lk := range telemetry.PathLinks(pl.Path) {
				load[lk] += rates[i]
			}
		}
		max := 0.0
		for _, r := range load {
			if u := r / capacity; u > max {
				max = u
			}
		}
		return max
	}

	// planTE iterates the optimizer to a fixed point, exactly as the
	// deployment's TE loop would with a perfectly converged telemetry view.
	planTE := func() map[[2]int][]int {
		eng := te.New(te.Config{})
		assigned := make(map[[2]int][]int)
		for round := 0; round < rounds; round++ {
			pls := telemetry.ComputePlacementsAssigned(g, pairs, up, assigned)
			st := te.State{
				Links:           make(map[telemetry.LinkKey]te.Link),
				DefaultCapacity: capacity,
			}
			for i, pl := range pls {
				for _, lk := range telemetry.PathLinks(pl.Path) {
					l := st.Links[lk]
					l.Rate += rates[i]
					l.Capacity = capacity
					st.Links[lk] = l
				}
			}
			for i, pl := range pls {
				if pl.Path == nil {
					continue
				}
				st.Flows = append(st.Flows, te.Flow{
					Pair: [2]int{pl.SrcNode, pl.DstNode}, Rate: rates[i],
					Path:       pl.Path,
					Candidates: core.EqualCostPaths(g, pl.SrcNode, pl.DstNode, up, 6),
				})
			}
			moves := eng.Plan(st)
			if len(moves) == 0 {
				break
			}
			for _, mv := range moves {
				assigned[mv.Pair] = mv.To
			}
		}
		return assigned
	}

	b.Run("mode=sp", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = maxUtil(nil)
		}
		b.ReportMetric(u, "maxutil")
	})
	b.Run("mode=te", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = maxUtil(planTE())
		}
		b.ReportMetric(u, "maxutil")
	})
}

//go:build ignore

// Command doccheck is the CI documentation gate. It enforces three
// contracts the godoc-rendered API and the prose docs depend on:
//
//   - every package (root, internal/..., cmd/...) carries a package doc
//     comment — the one-paragraph orientation a reader gets before any
//     symbol (staticcheck ST1000 enforces the same rule in-editor; this
//     gate also runs where staticcheck is not installed);
//
//   - every exported top-level symbol of the public routeflow package has
//     a doc comment, so the API surface is never silently undocumented;
//
//   - every relative link in README.md and docs/*.md resolves to a file
//     that exists (external http(s) links are not fetched).
//
//     go run scripts/doccheck.go
//
// Exit status is non-zero with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var fails []string
	fails = append(fails, checkPackageDocs()...)
	fails = append(fails, checkPublicGodoc()...)
	fails = append(fails, checkLinks()...)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(fails))
		os.Exit(1)
	}
	fmt.Println("doccheck: package docs, public godoc and doc links all ok")
}

// packageDirs lists every directory under the repo that holds a Go package
// the gate covers: the module root, internal/* and cmd/*.
func packageDirs() []string {
	dirs := []string{"."}
	for _, glob := range []string{"internal/*", "cmd/*"} {
		matches, _ := filepath.Glob(glob)
		for _, m := range matches {
			if fi, err := os.Stat(m); err == nil && fi.IsDir() {
				dirs = append(dirs, m)
			}
		}
	}
	return dirs
}

// parseDir parses every non-test Go file of one directory.
func parseDir(dir string) (map[string]*ast.File, *token.FileSet, error) {
	fset := token.NewFileSet()
	files := make(map[string]*ast.File)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", path, err)
		}
		files[path] = f
	}
	return files, fset, nil
}

// checkPackageDocs requires one package doc comment per package directory.
func checkPackageDocs() []string {
	var fails []string
	for _, dir := range packageDirs() {
		files, _, err := parseDir(dir)
		if err != nil {
			fails = append(fails, fmt.Sprintf("doccheck: %v", err))
			continue
		}
		if len(files) == 0 {
			continue
		}
		found := false
		for _, f := range files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				found = true
				break
			}
		}
		if !found {
			fails = append(fails, fmt.Sprintf("%s: package has no doc comment (ST1000)", dir))
		}
	}
	return fails
}

// checkPublicGodoc requires a doc comment on every exported top-level
// declaration of the root routeflow package — the godoc surface users read.
func checkPublicGodoc() []string {
	var fails []string
	files, fset, err := parseDir(".")
	if err != nil {
		return []string{fmt.Sprintf("doccheck: %v", err)}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods document themselves off their receiver type; the
				// gate covers package-level functions.
				if d.Recv == nil && d.Name.IsExported() && d.Doc == nil {
					fails = append(fails, fmt.Sprintf("%s: exported func %s has no doc comment",
						fset.Position(d.Pos()), d.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							fails = append(fails, fmt.Sprintf("%s: exported type %s has no doc comment",
								fset.Position(s.Pos()), s.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								fails = append(fails, fmt.Sprintf("%s: exported %s has no doc comment",
									fset.Position(n.Pos()), n.Name))
							}
						}
					}
				}
			}
		}
	}
	return fails
}

var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks resolves every relative markdown link in README.md and
// docs/*.md against the working tree.
func checkLinks() []string {
	var fails []string
	docs := []string{"README.md"}
	if matches, _ := filepath.Glob("docs/*.md"); matches != nil {
		docs = append(docs, matches...)
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			fails = append(fails, fmt.Sprintf("doccheck: %v", err))
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				fails = append(fails, fmt.Sprintf("%s: broken link %q (%s does not exist)", doc, m[1], resolved))
			}
		}
	}
	return fails
}

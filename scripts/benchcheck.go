// Command benchcheck is the CI bench-regression gate: it compares a fresh
// scripts/bench.sh snapshot against the checked-in baseline and fails when
// the dataplane hot path got slower or an allocation budget was broken.
//
//	go run scripts/benchcheck.go BENCH_BASELINE.json BENCH_CI.json
//
// Gates:
//   - every benchmark at 0 allocs/op in the baseline must stay at 0 — the
//     zero-allocation contracts of the codec and the forwarding path are
//     machine-independent, so this check is exact;
//   - BenchmarkSwitchForwardCached ns/op may not regress more than the
//     threshold (-threshold, default 20%) against the baseline, which was
//     recorded on the same runner class CI uses;
//   - a gated benchmark missing from the current snapshot fails (a renamed
//     or deleted benchmark must update the baseline deliberately);
//   - shard scaling: BenchmarkAutoConfigureSharded/replicas=4 must beat
//     replicas=1 by at least -shard-speedup (default 1.5×). The gate is a
//     ratio within the current snapshot, so it is machine-independent;
//   - parallel scaling: every benchmark recorded at both @gomaxprocs=1 and
//     @gomaxprocs=4 (the bench.sh GOMAXPROCS matrix) must run at least
//     -parallel-speedup (default 1.5×) faster on 4 procs. Also a
//     within-snapshot ratio; it only binds when the snapshot's recorded CPU
//     count is >= 4 (a 1-core machine cannot scale and is reported
//     informationally);
//   - traffic engineering: BenchmarkTEMaxLinkUtilization/mode=te's maxutil
//     metric must be at most -te-ratio (default 0.75) of the mode=sp leg —
//     the optimizer has to shed at least a quarter of the peak link load.
//     Both legs are deterministic model computations, so this
//     within-snapshot ratio is exact;
//   - the headline pps_macro number (batch dataplane packets per second)
//     may not regress more than -threshold against the baseline.
//
// The comparison table goes to stdout; CI uploads it as an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type entry struct {
	NsOp     float64  `json:"ns_op"`
	BOp      *float64 `json:"b_op"`
	AllocsOp *float64 `json:"allocs_op"`
	PktsS    *float64 `json:"pkts_s"`
	MaxUtil  *float64 `json:"maxutil"`
}

type snapshot struct {
	Cpus       int              `json:"cpus"`
	PpsMacro   *float64         `json:"pps_macro"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "allowed ns/op regression for gated benchmarks (fraction)")
	nsGate := flag.String("ns-gate", "BenchmarkSwitchForwardCached", "substring selecting ns/op-gated benchmarks")
	shardSpeedup := flag.Float64("shard-speedup", 1.5, "minimum replicas=1/replicas=4 speedup for the sharded controller")
	parallelSpeedup := flag.Float64("parallel-speedup", 1.5, "minimum @gomaxprocs=1 vs @gomaxprocs=4 speedup for the parallel dataplane (binds on >=4 CPUs)")
	teRatio := flag.Float64("te-ratio", 0.75, "maximum TE/shortest-path max-link-utilization ratio (TE must shed at least 1-ratio of the peak)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-threshold 0.20] [-ns-gate substr] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-50s %12s %12s %8s  %s\n", "benchmark", "base ns/op", "now ns/op", "delta", "verdict")
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		gated := strings.Contains(name, *nsGate)
		zeroAlloc := b.AllocsOp != nil && *b.AllocsOp == 0
		if !ok {
			verdict := "missing (not gated)"
			if gated || zeroAlloc {
				verdict = "MISSING"
				failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from current run", name))
			}
			fmt.Printf("%-50s %12.1f %12s %8s  %s\n", name, b.NsOp, "-", "-", verdict)
			continue
		}
		delta := 0.0
		if b.NsOp > 0 {
			delta = (c.NsOp - b.NsOp) / b.NsOp
		}
		var verdicts []string
		if zeroAlloc {
			if c.AllocsOp == nil || *c.AllocsOp > 0 {
				got := "?"
				if c.AllocsOp != nil {
					got = fmt.Sprintf("%g", *c.AllocsOp)
				}
				failures = append(failures, fmt.Sprintf("%s: allocs/op budget broken (0 -> %s)", name, got))
				verdicts = append(verdicts, "ALLOC REGRESSION")
			} else {
				verdicts = append(verdicts, "0 allocs ok")
			}
		}
		if gated {
			if delta > *threshold {
				failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.1f -> %.1f, limit %.0f%%)",
					name, delta*100, b.NsOp, c.NsOp, *threshold*100))
				verdicts = append(verdicts, "NS REGRESSION")
			} else {
				verdicts = append(verdicts, "ns/op ok")
			}
		}
		if len(verdicts) == 0 {
			verdicts = append(verdicts, "informational")
		}
		fmt.Printf("%-50s %12.1f %12.1f %+7.1f%%  %s\n",
			name, b.NsOp, c.NsOp, delta*100, strings.Join(verdicts, ", "))
	}
	const shardName = "BenchmarkAutoConfigureSharded/replicas="
	if c1, ok1 := cur.Benchmarks[shardName+"1"]; ok1 {
		c4, ok4 := cur.Benchmarks[shardName+"4"]
		if !ok4 || c4.NsOp <= 0 {
			failures = append(failures, fmt.Sprintf("%s4: missing from current run, cannot gate shard scaling", shardName))
		} else {
			speedup := c1.NsOp / c4.NsOp
			fmt.Printf("\nshard scaling: replicas=1 vs replicas=4 speedup %.2fx (minimum %.2fx)\n",
				speedup, *shardSpeedup)
			if speedup < *shardSpeedup {
				failures = append(failures, fmt.Sprintf(
					"shard scaling: 4 replicas only %.2fx faster than 1 (minimum %.2fx)",
					speedup, *shardSpeedup))
			}
		}
	}

	// Parallel-scaling gate: pair up the @gomaxprocs=1/@gomaxprocs=4 legs of
	// the bench.sh GOMAXPROCS matrix and require the 4-proc leg to be at
	// least -parallel-speedup faster. A within-snapshot ratio — but only a
	// machine with >= 4 CPUs can express it, so on smaller machines (or old
	// snapshots with no recorded CPU count) it is informational.
	const g1, g4 = "@gomaxprocs=1", "@gomaxprocs=4"
	var parallelNames []string
	for name := range cur.Benchmarks {
		if strings.HasSuffix(name, g1) {
			parallelNames = append(parallelNames, strings.TrimSuffix(name, g1))
		}
	}
	sort.Strings(parallelNames)
	for _, stem := range parallelNames {
		c1 := cur.Benchmarks[stem+g1]
		c4, ok4 := cur.Benchmarks[stem+g4]
		if !ok4 || c4.NsOp <= 0 {
			failures = append(failures, fmt.Sprintf("%s%s: missing from current run, cannot gate parallel scaling", stem, g4))
			continue
		}
		speedup := c1.NsOp / c4.NsOp
		binding := cur.Cpus >= 4
		note := ""
		if !binding {
			note = fmt.Sprintf(" [informational: snapshot ran on %d CPU(s)]", cur.Cpus)
		}
		fmt.Printf("\nparallel scaling: %s 1 vs 4 procs speedup %.2fx (minimum %.2fx)%s\n",
			stem, speedup, *parallelSpeedup, note)
		if binding && speedup < *parallelSpeedup {
			failures = append(failures, fmt.Sprintf(
				"parallel scaling: %s only %.2fx faster at GOMAXPROCS=4 than 1 (minimum %.2fx)",
				stem, speedup, *parallelSpeedup))
		}
	}

	// Traffic-engineering gate: the optimizer must cut the fat tree's max
	// link utilization to at most -te-ratio of the shortest-path placement.
	// Both legs are deterministic model computations within the current
	// snapshot, so the ratio is machine-independent and exact.
	const teBench = "BenchmarkTEMaxLinkUtilization/mode="
	if sp, ok := cur.Benchmarks[teBench+"sp"]; ok {
		teLeg, okTE := cur.Benchmarks[teBench+"te"]
		switch {
		case !okTE || teLeg.MaxUtil == nil || sp.MaxUtil == nil || *sp.MaxUtil <= 0:
			failures = append(failures, fmt.Sprintf("%ste: maxutil missing from current run, cannot gate TE", teBench))
		default:
			ratio := *teLeg.MaxUtil / *sp.MaxUtil
			fmt.Printf("\nTE max-link-utilization: sp %.3f -> te %.3f, ratio %.3f (maximum %.2f)\n",
				*sp.MaxUtil, *teLeg.MaxUtil, ratio, *teRatio)
			if ratio > *teRatio {
				failures = append(failures, fmt.Sprintf(
					"TE max-link-utilization only %.3fx of shortest-path (maximum %.2fx — TE must shed >=%.0f%%)",
					ratio, *teRatio, (1-*teRatio)*100))
			}
		}
	}

	// Headline pps gate: the batch dataplane's packets-per-second macro
	// number may not regress against the baseline beyond -threshold.
	if base.PpsMacro != nil && *base.PpsMacro > 0 {
		switch {
		case cur.PpsMacro == nil || *cur.PpsMacro <= 0:
			failures = append(failures, "pps_macro: missing from current run")
		default:
			delta := (*cur.PpsMacro - *base.PpsMacro) / *base.PpsMacro
			fmt.Printf("\npps macro: %.0f -> %.0f pkts/s (%+.1f%%, limit -%.0f%%)\n",
				*base.PpsMacro, *cur.PpsMacro, delta*100, *threshold*100)
			if delta < -*threshold {
				failures = append(failures, fmt.Sprintf(
					"pps_macro regressed %.1f%% (%.0f -> %.0f pkts/s, limit %.0f%%)",
					-delta*100, *base.PpsMacro, *cur.PpsMacro, *threshold*100))
			}
		}
	}

	if len(failures) > 0 {
		fmt.Printf("\nFAIL: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchcheck: all gates passed")
}

#!/usr/bin/env sh
# bench.sh — run the protocol-substrate and dataplane micro benchmarks and
# emit a JSON perf snapshot (benchmark name -> ns/op, B/op, allocs/op and,
# for the dataplane benchmarks, pkts/s).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH.json
#   benchtime    defaults to 10000x (pass e.g. 1s for a timed run)
#
# Besides the ambient-GOMAXPROCS run, BenchmarkSwitchForwardParallel is run
# pinned at GOMAXPROCS=1 and GOMAXPROCS=4 (keys suffixed "@gomaxprocs=N"):
# benchcheck gates the 4-vs-1 scaling ratio within this snapshot, which is
# machine-independent. The snapshot also records the machine's CPU count
# (the scaling gate only binds on >= 4 cores) and the headline "pps_macro"
# number — the batch dataplane's single-flow packets-per-second rate.
#
# The macro benchmarks (Fig. 3 ring scaling, the pan-European demo) are not
# run here — they take seconds per iteration; run them directly:
#   go test -run='^$' -bench='BenchmarkFig3AutoConfigure|BenchmarkDemoPanEuropeanVideo' -benchtime=3x .
set -eu

out="${1:-BENCH.json}"
benchtime="${2:-10000x}"
cd "$(dirname "$0")/.."

cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

raw="$(go test -run='^$' \
	-bench='BenchmarkOpenFlow|BenchmarkMatch|BenchmarkRIB|BenchmarkLLDP|BenchmarkSwitchForward|BenchmarkBGP' \
	-benchmem -benchtime="$benchtime" . ./internal/ofswitch/ ./internal/bgp/)"

# GOMAXPROCS matrix for the parallel forwarding benchmark: the 1-proc and
# 4-proc legs of the same workload, tagged so they get distinct keys. The
# tagging awk also strips go test's own -N GOMAXPROCS name suffix.
for g in 1 4; do
	raw="$raw
$(GOMAXPROCS=$g go test -run='^$' -bench='BenchmarkSwitchForwardParallel' \
		-benchmem -benchtime="$benchtime" ./internal/ofswitch/ |
		awk -v g="$g" '/^Benchmark/ { sub(/-[0-9]+$/, "", $1); $1 = $1 "@gomaxprocs=" g } { print }')"
done

# Shard-scaling series (distributed RF-controller, 1/2/4 replicas): a macro
# benchmark at seconds per iteration, so it runs at a fixed small iteration
# count instead of $benchtime. benchcheck gates the replicas=1/replicas=4
# ratio, which is machine-independent.
raw="$raw
$(go test -run='^$' -bench='BenchmarkAutoConfigureSharded' -benchmem -benchtime=2x .)"

# Traffic-engineering headline: max link utilization on a skewed fat-tree
# demand, shortest-path vs the TE optimizer. The "maxutil" metric is a
# deterministic model computation, so a fixed tiny iteration count is
# enough; benchcheck gates the within-snapshot te/sp ratio.
raw="$raw
$(go test -run='^$' -bench='BenchmarkTEMaxLinkUtilization' -benchmem -benchtime=3x .)"

printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""; pkts = ""; maxutil = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "B/op")      bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
		if ($i == "pkts/s")    pkts = $(i-1)
		if ($i == "maxutil")   maxutil = $(i-1)
	}
	if (ns != "") {
		if (n++) printf ",\n"
		printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s, \"pkts_s\": %s, \"maxutil\": %s}", \
			name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs), \
			(pkts == "" ? "null" : pkts), (maxutil == "" ? "null" : maxutil)
	}
}
END { if (n == 0) exit 1 }
' > /tmp/bench_body.$$

# Headline packets-per-second macro number: the batch dataplane, single
# steady flow — the wire-speed claim in one figure.
pps="$(printf '%s\n' "$raw" | awk '
$1 ~ /^BenchmarkSwitchForwardBatch\/flows=1/ {
	for (i = 2; i <= NF; i++) if ($i == "pkts/s") { print $(i-1); exit }
}')"

{
	printf '{\n  "cpus": %s,\n  "pps_macro": %s,\n  "benchmarks": {\n' \
		"$cpus" "${pps:-null}"
	cat /tmp/bench_body.$$
	printf '\n  }\n}\n'
} > "$out"
rm -f /tmp/bench_body.$$

echo "wrote $out" >&2

#!/usr/bin/env sh
# bench.sh — run the protocol-substrate and dataplane micro benchmarks and
# emit a JSON perf snapshot (benchmark name -> ns/op, B/op, allocs/op).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH.json
#   benchtime    defaults to 10000x (pass e.g. 1s for a timed run)
#
# The macro benchmarks (Fig. 3 ring scaling, the pan-European demo) are not
# run here — they take seconds per iteration; run them directly:
#   go test -run='^$' -bench='BenchmarkFig3AutoConfigure|BenchmarkDemoPanEuropeanVideo' -benchtime=3x .
set -eu

out="${1:-BENCH.json}"
benchtime="${2:-10000x}"
cd "$(dirname "$0")/.."

raw="$(go test -run='^$' \
	-bench='BenchmarkOpenFlow|BenchmarkMatch|BenchmarkRIB|BenchmarkLLDP|BenchmarkSwitchForward|BenchmarkBGP' \
	-benchmem -benchtime="$benchtime" . ./internal/ofswitch/ ./internal/bgp/)"

# Shard-scaling series (distributed RF-controller, 1/2/4 replicas): a macro
# benchmark at seconds per iteration, so it runs at a fixed small iteration
# count instead of $benchtime. benchcheck gates the replicas=1/replicas=4
# ratio, which is machine-independent.
raw="$raw
$(go test -run='^$' -bench='BenchmarkAutoConfigureSharded' -benchmem -benchtime=2x .)"

printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "B/op")      bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns != "") {
		if (n++) printf ",\n"
		printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
			name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
	}
}
END { if (n == 0) exit 1 }
' > /tmp/bench_body.$$

{
	printf '{\n  "benchmarks": {\n'
	cat /tmp/bench_body.$$
	printf '\n  }\n}\n'
} > "$out"
rm -f /tmp/bench_body.$$

echo "wrote $out" >&2

package routeflow

// The curated chaos suite: every named scenario is one table-driven subtest,
// which is also how CI runs them (one matrix leg per name, selected with
// -run 'TestCuratedScenario/^<name>$'). A scenario fails the test if the
// harness errors, if any quiesce point times out, or if any invariant —
// no-blackhole, no-loop, flow-table consistency, stream continuity — is
// violated.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func TestCuratedScenario(t *testing.T) {
	for _, spec := range CuratedScenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunScenario(spec)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			if failed := res.FailedChecks(); len(failed) > 0 {
				t.Fatalf("invariants failed:\n  %s\nevent log:\n%s",
					strings.Join(failed, "\n  "), res.EventLog())
			}
			if res.InitialConverge <= 0 {
				t.Fatalf("no initial convergence recorded\n%s", res.EventLog())
			}
		})
	}
}

// TestCIMatrixCoversCuratedSuite guards against matrix drift: the CI test
// job skips ^TestCuratedScenario$ wholesale and the scenario job only runs
// the legs listed in .github/workflows/ci.yml — so a scenario added to
// Curated() but not to the matrix would silently run nowhere. This test
// (which the CI test job *does* run) fails until the two lists match.
func TestCIMatrixCoversCuratedSuite(t *testing.T) {
	data, err := os.ReadFile(".github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	workflow := string(data)
	i := strings.Index(workflow, "scenario:\n")
	if i < 0 {
		t.Fatal("workflow has no scenario matrix")
	}
	legs := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^\s+- ([a-z0-9-]+)\s*$`).
		FindAllStringSubmatch(workflow[i:], -1) {
		legs[m[1]] = true
	}
	names := CuratedScenarioNames()
	for _, name := range names {
		if !legs[name] {
			t.Errorf("curated scenario %q missing from the CI matrix in .github/workflows/ci.yml", name)
		}
		delete(legs, name)
	}
	for leg := range legs {
		t.Errorf("CI matrix leg %q does not name a curated scenario", leg)
	}
	if len(names) < 10 {
		t.Fatalf("curated suite shrank to %d scenarios; the acceptance bar is 10", len(names))
	}
}

// TestScenarioPartitionIsHonest pins the partition contract end to end
// through the harness: the partition scenario's middle settle must report
// partitioned=true with every invariant (including honest cross-cut
// unreachability) green, and the final settle must report the heal.
func TestScenarioPartitionIsHonest(t *testing.T) {
	spec, ok := ScenarioByName("ring4-partition-heal")
	if !ok {
		t.Fatal("partition scenario missing from curated suite")
	}
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if failed := res.FailedChecks(); len(failed) > 0 {
		t.Fatalf("invariants failed: %v\n%s", failed, res.EventLog())
	}
	sawPartition, sawHeal := false, false
	for _, ph := range res.Phases {
		if ph.Fault == "link-down link=2" {
			sawPartition = ph.Partitioned
		}
		if ph.Fault == "link-up link=2" {
			sawHeal = !ph.Partitioned
		}
	}
	if !sawPartition {
		t.Fatalf("partition settle did not report partitioned=true\n%s", res.EventLog())
	}
	if !sawHeal {
		t.Fatalf("heal settle did not report partitioned=false\n%s", res.EventLog())
	}
}

// TestInterDomainScenarioDeterministicEventLog pins the acceptance bar for
// the inter-domain chaos family: the same curated multi-AS scenario run
// twice produces a byte-identical event log — BGP session churn, damping and
// best-path re-selection must never leak timing into the log.
func TestInterDomainScenarioDeterministicEventLog(t *testing.T) {
	run := func() *ScenarioResult {
		spec, ok := ScenarioByName("multias3-border-down-up")
		if !ok {
			t.Fatal("multias3-border-down-up missing from curated suite")
		}
		res, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		if failed := res.FailedChecks(); len(failed) > 0 {
			t.Fatalf("invariants failed: %v\n%s", failed, res.EventLog())
		}
		return res
	}
	if a, b := run().EventLog(), run().EventLog(); a != b {
		t.Fatalf("same spec, different event logs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestTEScenarioDeterministicEventLog pins the acceptance bar for the
// traffic-engineering chaos family: a curated TE scenario — a Zipf fleet
// hammering the dataplane, the optimizer migrating pins, a master kill mid
// run — twice produces a byte-identical event log. TE decisions and fleet
// traffic are wall-clock-dependent and must never leak into the log; only
// the scheduled faults and invariant verdicts may appear.
func TestTEScenarioDeterministicEventLog(t *testing.T) {
	run := func() *ScenarioResult {
		spec, ok := ScenarioByName("grid9-te-master-kill")
		if !ok {
			t.Fatal("grid9-te-master-kill missing from curated suite")
		}
		res, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		if failed := res.FailedChecks(); len(failed) > 0 {
			t.Fatalf("invariants failed: %v\n%s", failed, res.EventLog())
		}
		return res
	}
	if a, b := run().EventLog(), run().EventLog(); a != b {
		t.Fatalf("same spec, different event logs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestScenarioDeterministicEventLog is the seed-sweep determinism gate: the
// same spec (same seed, seed-derived schedule) run twice produces a
// byte-identical event log.
func TestScenarioDeterministicEventLog(t *testing.T) {
	mk := func() ScenarioSpec {
		return ScenarioSpec{
			Name:         "determinism-probe",
			Topology:     Ring(4),
			HostNodes:    []int{0, 2},
			Seed:         42,
			RandomFaults: 2,
		}
	}
	first, err := RunScenario(mk())
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if failed := first.FailedChecks(); len(failed) > 0 {
		t.Fatalf("run 1 invariants failed: %v\n%s", failed, first.EventLog())
	}
	second, err := RunScenario(mk())
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a, b := first.EventLog(), second.EventLog(); a != b {
		t.Fatalf("same seed, different event logs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	// A different seed must yield a different schedule (and thus log).
	diff := mk()
	diff.Seed = 1042
	third, err := RunScenario(diff)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if third.EventLog() == first.EventLog() {
		t.Fatal("different seeds produced identical event logs — the schedule ignores the seed")
	}
}

// TestMasterKillScenarioDeterministicEventLog pins the acceptance bar for
// the distributed-controller chaos family: the curated master-kill scenario
// — a replica crash racing the initial convergence, lease lapse, shard
// adoption by the survivor — must hold every invariant and produce a
// byte-identical event log across runs of the same seed.
func TestMasterKillScenarioDeterministicEventLog(t *testing.T) {
	run := func() *ScenarioResult {
		spec, ok := ScenarioByName("ring6-master-kill-midconverge")
		if !ok {
			t.Fatal("ring6-master-kill-midconverge missing from curated suite")
		}
		res, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		if failed := res.FailedChecks(); len(failed) > 0 {
			t.Fatalf("invariants failed: %v\n%s", failed, res.EventLog())
		}
		return res
	}
	if a, b := run().EventLog(), run().EventLog(); a != b {
		t.Fatalf("same spec, different event logs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

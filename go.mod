module routeflow

go 1.24

// Package routeflow is the public API of this reproduction of "Automatic
// Configuration of Routing Control Platforms in OpenFlow Networks" (Sharma
// et al., SIGCOMM 2013). It assembles the full system the paper describes —
// emulated OpenFlow switches, a FlowVisor slicing proxy, a topology
// controller running LLDP discovery, and a RouteFlow RF-controller whose
// RPC server creates and configures one routing VM per switch — and exposes
// the experiment harness that regenerates the paper's evaluation: the
// Fig. 3 configuration-time comparison and the §3 pan-European video
// demonstration.
//
// Quick start:
//
//	d, err := routeflow.New(routeflow.Ring(4),
//	        routeflow.WithTimeScale(50), // compress protocol time 50×
//	        routeflow.WithHosts(0, 2),
//	)
//	if err != nil { ... }
//	defer d.Close()
//	d.Start()
//	t, _ := d.AwaitConfigured(5 * time.Minute) // protocol time
//
// Since PR 6 the RF-controller can be run as a replicated cluster with
// sharded per-switch ownership and lease-based failover: add
// routeflow.WithReplicas(n) (or WithCluster for full control over shard
// policy and lease timings). The default remains the paper's single
// rf-server.
//
// Since PR 8 the deployment can stream per-flow and per-link statistics:
// add routeflow.WithTelemetry() and read Deployment.TelemetrySnapshot —
// balanced monitoring placement (one observer switch per flow), delta
// exports over the control channel, exactly-once aggregation into rolling
// views. See the telemetry types in this package for the details.
package routeflow

import (
	"net/netip"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/core"
	"routeflow/internal/gui"
	"routeflow/internal/netemu"
	"routeflow/internal/quagga"
	"routeflow/internal/stream"
	"routeflow/internal/topo"
	"routeflow/internal/vnet"
)

// Re-exported system types.
type (
	// Deployment is a fully wired automatic-configuration system.
	Deployment = core.Deployment
	// Options configures a Deployment.
	Options = core.Options
	// ManualModel is the paper's manual-configuration cost model.
	ManualModel = core.ManualModel
	// Timers are the routing daemons' protocol timers.
	Timers = quagga.Timers
	// Topology is an undirected switch topology with port numbering.
	Topology = topo.Graph
	// Host is an emulated end system (traffic source/sink).
	Host = netemu.Host
	// Dashboard is the red/green configuration GUI.
	Dashboard = gui.Dashboard
	// VMState is a virtual machine lifecycle state.
	VMState = vnet.State
	// VideoServer streams the demo's video clip.
	VideoServer = stream.Server
	// VideoServerConfig configures a VideoServer.
	VideoServerConfig = stream.ServerConfig
	// VideoClient receives it and records first-frame time.
	VideoClient = stream.Client
	// VideoStats summarize reception.
	VideoStats = stream.ClientStats
)

// NewDeployment assembles a system from an Options struct literal; call
// Start to run it.
//
// Deprecated: use New with functional options (WithTimeScale, WithHosts,
// WithCluster, …). The struct form keeps compiling and behaving
// identically — it is the same Options value the options build — but new
// knobs are only documented on their With* constructors.
func NewDeployment(opts Options) (*Deployment, error) { return core.NewDeployment(opts) }

// DefaultManualModel returns the paper's 5+2+8 minute per-switch figures.
func DefaultManualModel() ManualModel { return core.DefaultManualModel() }

// DPIDForNode maps a topology node ID to its switch datapath ID.
func DPIDForNode(node int) uint64 { return core.DPIDForNode(node) }

// HostSubnet returns the conventional host subnet of a node.
func HostSubnet(node int) netip.Prefix { return core.HostSubnet(node) }

// ScaledClock returns a clock running factor× faster than wall time, used
// to compress protocol timers in experiments; durations it reports are
// protocol time.
func ScaledClock(factor float64) clock.Clock { return clock.Scaled(factor) }

// SystemClock returns the real-time clock.
func SystemClock() clock.Clock { return clock.System() }

// Topology generators.

// Ring returns the n-switch ring used in the paper's Fig. 3 experiments.
func Ring(n int) *Topology { return topo.Ring(n) }

// PanEuropean returns the 28-node pan-European topology of the paper's
// demonstration.
func PanEuropean() *Topology { return topo.PanEuropean() }

// Line returns a chain of n switches.
func Line(n int) *Topology { return topo.Line(n) }

// Star returns a hub-and-spoke topology.
func Star(n int) *Topology { return topo.Star(n) }

// Grid returns a w×h mesh.
func Grid(w, h int) *Topology { return topo.Grid(w, h) }

// FatTree returns the k-ary fat-tree data-center fabric (k even; (k/2)²
// cores, k pods of k/2 aggregation + k/2 edge switches).
func FatTree(k int) *Topology { return topo.FatTree(k) }

// FatTreeEdges lists the edge-switch node IDs of FatTree(k) — the natural
// host attachment points.
func FatTreeEdges(k int) []int { return topo.FatTreeEdges(k) }

// Random returns a connected random topology (deterministic per seed).
func Random(n, m int, seed int64) *Topology { return topo.Random(n, m, seed) }

// Inter-domain topologies.

type (
	// ASMember is one autonomous system of a MultiAS composite.
	ASMember = topo.ASMember
	// ASBorderLink joins two member ASes of a MultiAS composite.
	ASBorderLink = topo.BorderLink
)

// MultiAS stitches member graphs into one inter-domain topology: every node
// is annotated with its member's AS and the border links become eBGP
// boundaries the auto-configuration pipeline configures without manual
// input.
func MultiAS(name string, members []ASMember, borders []ASBorderLink) (*Topology, error) {
	return topo.MultiAS(name, members, borders)
}

// ASRing joins asCount ring-shaped ASes of asSize switches into a ring of
// domains — the inter-domain analogue of the paper's Fig. 3 rings.
func ASRing(asCount, asSize int) *Topology { return topo.ASRing(asCount, asSize) }

// NewDashboard creates the red/green GUI for a deployment's topology; wire
// its Update method to Options.OnStatus.
func NewDashboard(g *Topology) *Dashboard { return gui.New(g, core.DPIDForNode) }

// NewVideoServer creates the demo's video source on a deployment host.
func NewVideoServer(cfg stream.ServerConfig) (*VideoServer, error) { return stream.NewServer(cfg) }

// NewVideoClient binds the demo's video sink on a deployment host.
func NewVideoClient(h *Host, port uint16, clk clock.Clock) (*VideoClient, error) {
	return stream.NewClient(h, port, clk)
}

// DefaultExperimentTimers returns the RFC 2328 protocol timers the
// experiments run with (hello 10s, dead 40s, SPF delay 200ms) — the values
// a Quagga ospfd would default to on the paper's testbed.
func DefaultExperimentTimers() Timers {
	return Timers{Hello: 10 * time.Second, Dead: 40 * time.Second, SPFDelay: 200 * time.Millisecond}
}

package routeflow

import (
	"fmt"
	"io"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/core"
	"routeflow/internal/scenario"
	"routeflow/internal/stream"
)

// ExperimentConfig sets the common parameters of the paper's experiments.
// The zero value reproduces the paper's conditions at a 50× time
// compression: RFC OSPF timers, 1 s LLDP probes, a 2 s modeled VM boot.
type ExperimentConfig struct {
	// TimeScale compresses protocol time (reported durations stay in
	// protocol time). Default 50.
	TimeScale float64
	// BootDelay models VM creation. Default 2s.
	BootDelay time.Duration
	// Timers for the routing daemons. Default DefaultExperimentTimers.
	Timers Timers
	// ProbeInterval for LLDP discovery. Default 1s.
	ProbeInterval time.Duration
	// NoFlowVisor runs the merged-controller ablation.
	NoFlowVisor bool
	// Cluster sizes the distributed RF-controller replica set (zero = the
	// paper's single rf-server).
	Cluster ClusterSpec
	// RPCApplyDelay models serialized per-switch work in each replica's
	// RPC apply path — the cost sharding the switch population divides.
	RPCApplyDelay time.Duration
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.TimeScale <= 0 {
		c.TimeScale = 50
	}
	if c.BootDelay <= 0 {
		c.BootDelay = 2 * time.Second
	}
	if c.Timers == (Timers{}) {
		c.Timers = DefaultExperimentTimers()
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// deploy assembles the deployment every experiment entry point shares —
// the config's knobs (timers, discovery, ablation, cluster) threaded into
// core.Options once instead of per entry point.
func (c ExperimentConfig) deploy(g *Topology, hosts []int, clk clock.Clock) (*Deployment, error) {
	return core.NewDeployment(core.Options{
		Topology:      g,
		Clock:         clk,
		HostNodes:     hosts,
		BootDelay:     c.BootDelay,
		Timers:        c.Timers,
		ProbeInterval: c.ProbeInterval,
		LinkTTL:       3 * c.ProbeInterval,
		NoFlowVisor:   c.NoFlowVisor,
		Cluster:       c.Cluster,
		RPCApplyDelay: c.RPCApplyDelay,
	})
}

// Fig3Row is one point of the paper's Fig. 3: the time to configure
// RouteFlow on a ring of Switches switches, automatically (measured on this
// implementation, protocol time) and manually (the paper's administrator
// model).
type Fig3Row struct {
	Switches   int
	Auto       time.Duration
	AutoRouted time.Duration // extension: until OSPF fully converged
	Manual     time.Duration
}

// RunFig3Point measures one ring size.
func RunFig3Point(n int, cfg ExperimentConfig) (Fig3Row, error) {
	cfg = cfg.withDefaults()
	d, err := cfg.deploy(Ring(n), nil, ScaledClock(cfg.TimeScale))
	if err != nil {
		return Fig3Row{}, err
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		return Fig3Row{}, err
	}
	auto, err := d.AwaitConfigured(30 * time.Minute)
	if err != nil {
		return Fig3Row{}, fmt.Errorf("ring-%d: %w", n, err)
	}
	routed, err := d.AwaitConverged(30 * time.Minute)
	if err != nil {
		return Fig3Row{}, fmt.Errorf("ring-%d convergence: %w", n, err)
	}
	return Fig3Row{
		Switches:   n,
		Auto:       auto,
		AutoRouted: routed,
		Manual:     DefaultManualModel().Total(n),
	}, nil
}

// RunFig3 sweeps ring sizes, reproducing the paper's Fig. 3 series.
func RunFig3(sizes []int, cfg ExperimentConfig) ([]Fig3Row, error) {
	rows := make([]Fig3Row, 0, len(sizes))
	for _, n := range sizes {
		row, err := RunFig3Point(n, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig3 renders rows as the paper's figure data.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "%-10s %-16s %-18s %-16s %s\n",
		"switches", "auto(config)", "auto(converged)", "manual", "speedup")
	for _, r := range rows {
		speedup := float64(r.Manual) / float64(r.AutoRouted)
		fmt.Fprintf(w, "%-10d %-16s %-18s %-16s %.0fx\n",
			r.Switches, round(r.Auto), round(r.AutoRouted), r.Manual, speedup)
	}
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Millisecond) }

// MultiASRow is one point of the inter-domain scaling experiment: the time
// for a ring of ring-shaped ASes to cold-boot to full inter-domain
// convergence — the Fig. 3 methodology lifted from one flat OSPF domain to
// eBGP-joined autonomous systems.
type MultiASRow struct {
	ASes        int
	SwitchesPer int
	Switches    int
	Configured  time.Duration // every switch green (VM up)
	Converged   time.Duration // OSPF Full + BGP Established + routes everywhere
	ManualEquiv time.Duration // the administrator model for the same fabric
}

// RunMultiASPoint measures one AS count: an ASRing(asCount, asSize) deploys
// cold and the row records protocol time to configured and to full
// inter-domain convergence (every VM holding routes to every reachable host
// subnet, BGP sessions Established on every border and iBGP mesh).
func RunMultiASPoint(asCount, asSize int, cfg ExperimentConfig) (MultiASRow, error) {
	cfg = cfg.withDefaults()
	g := ASRing(asCount, asSize)
	var hosts []int
	for i := 0; i < asCount; i++ {
		// One host per AS, on its last switch: ASRing's border routers sit
		// at nodes 0 and asSize/2 of each ring, so asSize-1 is interior
		// whenever the AS has three or more switches.
		hosts = append(hosts, i*asSize+asSize-1)
	}
	d, err := cfg.deploy(g, hosts, ScaledClock(cfg.TimeScale))
	if err != nil {
		return MultiASRow{}, err
	}
	defer d.Close()
	if err := d.Start(); err != nil {
		return MultiASRow{}, err
	}
	row := MultiASRow{ASes: asCount, SwitchesPer: asSize, Switches: g.NumNodes(),
		ManualEquiv: DefaultManualModel().Total(g.NumNodes())}
	if row.Configured, err = d.AwaitConfigured(30 * time.Minute); err != nil {
		return row, fmt.Errorf("asring-%dx%d: %w", asCount, asSize, err)
	}
	if row.Converged, err = d.AwaitConverged(30 * time.Minute); err != nil {
		return row, fmt.Errorf("asring-%dx%d convergence: %w", asCount, asSize, err)
	}
	return row, nil
}

// RunMultiASScaling sweeps AS counts at a fixed per-AS size — convergence
// time vs. AS count, the inter-domain analogue of the Fig. 3 sweep.
func RunMultiASScaling(asCounts []int, asSize int, cfg ExperimentConfig) ([]MultiASRow, error) {
	rows := make([]MultiASRow, 0, len(asCounts))
	for _, n := range asCounts {
		row, err := RunMultiASPoint(n, asSize, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintMultiAS renders the inter-domain scaling series.
func PrintMultiAS(w io.Writer, rows []MultiASRow) {
	fmt.Fprintf(w, "%-6s %-10s %-16s %-18s %-16s %s\n",
		"ASes", "switches", "auto(config)", "auto(converged)", "manual", "speedup")
	for _, r := range rows {
		speedup := float64(r.ManualEquiv) / float64(r.Converged)
		fmt.Fprintf(w, "%-6d %-10d %-16s %-18s %-16s %.0fx\n",
			r.ASes, r.Switches, round(r.Configured), round(r.Converged), r.ManualEquiv, speedup)
	}
}

// DemoResult is the outcome of the paper's §3 demonstration.
type DemoResult struct {
	Switches    int
	Links       int
	Configured  time.Duration // all switches green
	Converged   time.Duration // OSPF full everywhere
	FirstVideo  time.Duration // cold start → first frame at the client
	VideoStats  VideoStats
	ManualEquiv time.Duration // what the administrator would have spent
}

// RunDemo reproduces the demonstration: a cold pan-European network, a video
// stream started immediately, and the time until it reaches the remote
// client — configuration included. It is the single-stream special case of
// RunDemoMultiStream.
func RunDemo(cfg ExperimentConfig, serverNode, clientNode int) (DemoResult, error) {
	ms, err := RunDemoMultiStream(cfg, [][2]int{{serverNode, clientNode}})
	res := DemoResult{
		Switches: ms.Switches, Links: ms.Links,
		Configured: ms.Configured, Converged: ms.Converged,
		FirstVideo:  ms.AllVideo,
		ManualEquiv: DefaultManualModel().Total(ms.Switches),
	}
	if len(ms.Streams) == 1 {
		res.VideoStats = ms.Streams[0].VideoStats
	}
	return res, err
}

func waitProtocol(clk interface {
	After(time.Duration) <-chan time.Time
}, d time.Duration) {
	<-clk.After(d)
}

// StreamResult is one stream of a multi-stream demonstration.
type StreamResult struct {
	ServerNode, ClientNode int
	FirstVideo             time.Duration // cold start → first frame at this client
	VideoStats             VideoStats
}

// MultiStreamResult is the outcome of RunDemoMultiStream.
type MultiStreamResult struct {
	Switches   int
	Links      int
	Configured time.Duration
	Converged  time.Duration
	// AllVideo is the cold start → the moment every stream has delivered
	// its first frame (the slowest stream bounds it).
	AllVideo time.Duration
	Streams  []StreamResult
}

// RunDemoMultiStream is the §3 demonstration under concurrent load: one
// video stream per (server, client) pair, all started at t=0 against the
// cold network. It exercises the dataplane the way the paper's testbed
// audience did — several flows crossing the 28-switch core at once — where
// per-switch forwarding cost, not configuration time, sets the ceiling.
func RunDemoMultiStream(cfg ExperimentConfig, pairs [][2]int) (MultiStreamResult, error) {
	cfg = cfg.withDefaults()
	if len(pairs) == 0 {
		return MultiStreamResult{}, fmt.Errorf("routeflow: multi-stream demo needs at least one (server, client) pair")
	}
	g := PanEuropean()
	clk := ScaledClock(cfg.TimeScale)
	hostSet := map[int]bool{}
	var hostNodes []int
	for _, p := range pairs {
		for _, n := range []int{p[0], p[1]} {
			if !hostSet[n] {
				hostSet[n] = true
				hostNodes = append(hostNodes, n)
			}
		}
	}
	d, err := cfg.deploy(g, hostNodes, clk)
	if err != nil {
		return MultiStreamResult{}, err
	}
	defer d.Close()

	clients := make([]*stream.Client, len(pairs))
	for i, p := range pairs {
		srvHost, ok := d.Host(p[0])
		if !ok {
			return MultiStreamResult{}, fmt.Errorf("routeflow: no host at server node %d", p[0])
		}
		cliHost, ok := d.Host(p[1])
		if !ok {
			return MultiStreamResult{}, fmt.Errorf("routeflow: no host at client node %d", p[1])
		}
		client, err := stream.NewClient(cliHost, 0, clk)
		if err != nil {
			return MultiStreamResult{}, err
		}
		defer client.Close()
		clients[i] = client
		server, err := stream.NewServer(stream.ServerConfig{
			Host: srvHost, Dst: cliHost.Addr(), Clock: clk,
		})
		if err != nil {
			return MultiStreamResult{}, err
		}
		// Cold start: stream first, then bring the network up — the paper's
		// ordering ("At the start of the experiment, we stream a video
		// clip").
		server.Start()
		defer server.Stop()
	}

	startAt := clk.Now()
	if err := d.Start(); err != nil {
		return MultiStreamResult{}, err
	}
	res := MultiStreamResult{Switches: g.NumNodes(), Links: g.NumLinks(),
		Streams: make([]StreamResult, len(pairs))}
	if res.Configured, err = d.AwaitConfigured(time.Hour); err != nil {
		return res, err
	}
	if res.Converged, err = d.AwaitConverged(time.Hour); err != nil {
		return res, err
	}
	for i, c := range clients {
		if err := c.AwaitFirstFrame(time.Hour); err != nil {
			return res, fmt.Errorf("stream %d→%d: %w", pairs[i][0], pairs[i][1], err)
		}
	}
	res.AllVideo = d.Elapsed()
	// Let a little video accumulate for the delivery statistics.
	waitProtocol(clk, 5*time.Second)
	for i, c := range clients {
		st := c.Stats()
		res.Streams[i] = StreamResult{
			ServerNode: pairs[i][0], ClientNode: pairs[i][1],
			FirstVideo: st.FirstFrame.Sub(startAt), VideoStats: st,
		}
	}
	return res, nil
}

// Chaos / scenario harness (internal/scenario re-exported).

type (
	// ScenarioSpec describes one chaos scenario: a topology, a scripted or
	// seed-derived fault schedule, and the invariants evaluated at every
	// quiesce point.
	ScenarioSpec = scenario.Spec
	// ScenarioFault is one scheduled fault of a scenario.
	ScenarioFault = scenario.Fault
	// ScenarioResult is the structured outcome of a scenario run, including
	// the deterministic event log.
	ScenarioResult = scenario.Result
	// ScenarioPhase is the outcome of one quiesce point.
	ScenarioPhase = scenario.Phase
	// ScenarioCheck is one invariant verdict.
	ScenarioCheck = scenario.Check
)

// Scenario fault kinds. The replica kinds need a clustered spec
// (Spec.Cluster.Replicas > 1).
const (
	FaultLinkDown         = scenario.FaultLinkDown
	FaultLinkUp           = scenario.FaultLinkUp
	FaultLinkFlap         = scenario.FaultLinkFlap
	FaultSwitchCrash      = scenario.FaultSwitchCrash
	FaultServerRestart    = scenario.FaultServerRestart
	FaultRPCLoss          = scenario.FaultRPCLoss
	FaultReplicaKill      = scenario.FaultReplicaKill
	FaultReplicaPartition = scenario.FaultReplicaPartition
	FaultReplicaHeal      = scenario.FaultReplicaHeal
)

// RunScenario executes one chaos scenario: build the deployment, inject the
// fault schedule, converge at every quiesce point and evaluate the invariant
// battery (no-blackhole, no-loop, flow-table consistency, stream
// continuity). The returned error covers harness failures only; invariant
// violations are reported in the result. The same spec (same seed) produces
// a byte-identical event log.
func RunScenario(spec ScenarioSpec) (*ScenarioResult, error) { return scenario.Run(spec) }

// CuratedScenarios returns the named scenario suite CI gates on.
func CuratedScenarios() []ScenarioSpec { return scenario.Curated() }

// CuratedScenarioNames lists the curated scenario names in suite order.
func CuratedScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a fresh spec for one curated scenario.
func ScenarioByName(name string) (ScenarioSpec, bool) { return scenario.ByName(name) }

// RandomFaultSchedule derives a deterministic fault schedule from a seed —
// the generator behind ScenarioSpec.RandomFaults, exposed for tools.
func RandomFaultSchedule(g *Topology, n int, seed int64) []ScenarioFault {
	return scenario.RandomSchedule(g, n, seed)
}

// PrintScenario renders a scenario result: the event log, then per-phase
// convergence times (protocol time) and failed checks.
func PrintScenario(w io.Writer, r *ScenarioResult) {
	fmt.Fprintf(w, "=== scenario %s (seed %d) ===\n", r.Name, r.Seed)
	for _, line := range r.Events {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintf(w, "phases (protocol time since start):\n")
	for _, ph := range r.Phases {
		status := "converged"
		if ph.Converged == 0 {
			status = "DID NOT CONVERGE"
		}
		fmt.Fprintf(w, "  %-40s %-18s t=%v partitioned=%v\n",
			ph.Fault, status, round(ph.Converged), ph.Partitioned)
	}
	for i, st := range r.Streams {
		fmt.Fprintf(w, "stream %d: frames=%d gaps=%d\n", i, st.Frames, st.Gaps)
	}
	if failed := r.FailedChecks(); len(failed) > 0 {
		fmt.Fprintf(w, "FAILED checks:\n")
		for _, f := range failed {
			fmt.Fprintf(w, "  %s\n", f)
		}
	} else {
		fmt.Fprintf(w, "all invariants held\n")
	}
}

// PrintDemo renders the demonstration outcome.
func PrintDemo(w io.Writer, r DemoResult) {
	fmt.Fprintf(w, "pan-European demo: %d switches, %d links\n", r.Switches, r.Links)
	fmt.Fprintf(w, "  all switches configured (green):  %v\n", round(r.Configured))
	fmt.Fprintf(w, "  OSPF fully converged:             %v\n", round(r.Converged))
	fmt.Fprintf(w, "  video at remote client:           %v (paper: ~4 min)\n", round(r.FirstVideo))
	fmt.Fprintf(w, "  frames received: %d (gaps %d)\n", r.VideoStats.Frames, r.VideoStats.Gaps)
	fmt.Fprintf(w, "  manual configuration equivalent:  %v (paper: ~7 h)\n", r.ManualEquiv)
}

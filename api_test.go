package routeflow

// Tests of the PR 6 public-API redesign: functional options build the same
// Options the deprecated struct-literal form does, New and the shim both
// deploy, the Run dispatcher routes every spec variant, and
// ScenarioExitCode never lets an invariant violation exit 0.

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

func TestFunctionalOptionsMatchStructLiteral(t *testing.T) {
	g := Ring(4)
	want := Options{
		Topology:          g,
		Pool:              netip.MustParsePrefix("172.20.0.0/16"),
		HostNodes:         []int{0, 2},
		BootDelay:         time.Second,
		Timers:            DefaultExperimentTimers(),
		ProbeInterval:     100 * time.Millisecond,
		LinkTTL:           300 * time.Millisecond,
		NoFlowVisor:       true,
		RPCDropRate:       0.25,
		RPCDropSeed:       7,
		RPCAttempts:       2,
		ReconcilerBackoff: 40 * time.Millisecond,
		ResyncProbe:       150 * time.Millisecond,
		Cluster:           ClusterSpec{Replicas: 3, LeaseTTL: time.Second, LeaseRenew: 200 * time.Millisecond},
		RPCApplyDelay:     10 * time.Millisecond,
	}
	opts := []Option{
		WithPool(netip.MustParsePrefix("172.20.0.0/16")),
		WithHosts(0, 2),
		WithBootDelay(time.Second),
		WithTimers(DefaultExperimentTimers()),
		WithProbeInterval(100 * time.Millisecond),
		WithLinkTTL(300 * time.Millisecond),
		WithoutFlowVisor(),
		WithRPCDropRate(0.25, 7),
		WithRPCAttempts(2),
		WithReconcilerBackoff(40 * time.Millisecond),
		WithResyncProbe(150 * time.Millisecond),
		WithCluster(ClusterSpec{Replicas: 3, LeaseTTL: time.Second, LeaseRenew: 200 * time.Millisecond}),
		WithRPCApplyDelay(10 * time.Millisecond),
	}
	got := Options{Topology: g}
	for _, o := range opts {
		o(&got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("functional options diverge from the struct literal:\ngot  %+v\nwant %+v", got, want)
	}

	// Later options override earlier ones, and the shorthands expand as
	// documented.
	var o Options
	WithReplicas(2)(&o)
	WithReplicas(4)(&o)
	if o.Cluster != (ClusterSpec{Replicas: 4}) {
		t.Fatalf("WithReplicas override = %+v", o.Cluster)
	}
	var scaled Options
	WithTimeScale(50)(&scaled)
	if scaled.Clock == nil {
		t.Fatal("WithTimeScale installed no clock")
	}
}

func TestNewAndDeprecatedShimBothDeploy(t *testing.T) {
	// The same tiny ring through both constructors; each must reach full
	// configuration. The struct-literal path is the compatibility shim the
	// redesign promises to keep working.
	build := map[string]func() (*Deployment, error){
		"functional-options": func() (*Deployment, error) {
			return New(Ring(3), WithTimeScale(400), WithHosts(0))
		},
		"struct-literal-shim": func() (*Deployment, error) {
			return NewDeployment(Options{
				Topology:  Ring(3),
				Clock:     ScaledClock(400),
				HostNodes: []int{0},
			})
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			d, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := d.AwaitConfigured(10 * time.Minute); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunDispatcherFig3(t *testing.T) {
	report, err := Run(Fig3Run{Sizes: []int{4}}, RunTimeScale(400))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Fig3) != 1 || report.Fig3[0].Switches != 4 {
		t.Fatalf("report = %+v", report)
	}
	var buf bytes.Buffer
	report.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("switches")) {
		t.Fatalf("print:\n%s", buf.String())
	}
}

func TestRunDispatcherScenario(t *testing.T) {
	report, err := Run(ScenarioRun{Spec: ScenarioSpec{
		Name:      "api-dispatch",
		Topology:  Ring(4),
		HostNodes: []int{0, 2},
		Seed:      1,
		Faults:    []ScenarioFault{{Kind: FaultLinkDown, Link: 0}, {Kind: FaultLinkUp, Link: 0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenario == nil || !report.Scenario.AllOK() {
		t.Fatalf("scenario report = %+v", report.Scenario)
	}
	if code := ScenarioExitCode(report.Scenario, nil); code != 0 {
		t.Fatalf("exit code %d for a clean run", code)
	}
}

func TestRunDispatcherRejectsNilSpec(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Fatal("nil spec accepted")
	}
}

// Regression for the rfchaos bug: a scenario whose invariants fail inside a
// settle retry completes without a harness error, and the old CLI path
// exited 0 on it. ScenarioExitCode must report 1 for every failure shape.
func TestScenarioExitCode(t *testing.T) {
	clean := &ScenarioResult{Phases: []ScenarioPhase{
		{Fault: "initial", Checks: []ScenarioCheck{{Name: "no-blackhole", OK: true}}},
	}}
	violated := &ScenarioResult{Phases: []ScenarioPhase{
		{Fault: "initial", Checks: []ScenarioCheck{{Name: "no-blackhole", OK: true}}},
		{Fault: "link-down 0", Checks: []ScenarioCheck{
			{Name: "no-loop", OK: true},
			{Name: "flow-consistency", OK: false, Detail: "node 2: stale flow"},
		}},
	}}
	for _, tc := range []struct {
		name string
		res  *ScenarioResult
		err  error
		want int
	}{
		{"all-ok", clean, nil, 0},
		{"invariant-violated", violated, nil, 1},
		{"harness-error", nil, errors.New("deploy failed"), 1},
		{"error-with-result", clean, errors.New("teardown failed"), 1},
		{"no-result-no-error", nil, nil, 1},
	} {
		if got := ScenarioExitCode(tc.res, tc.err); got != tc.want {
			t.Errorf("%s: exit code = %d, want %d", tc.name, got, tc.want)
		}
	}
}

package routeflow

import (
	"net/netip"
	"time"

	"routeflow/internal/clock"
	"routeflow/internal/cluster"
	"routeflow/internal/core"
	"routeflow/internal/vnet"
)

// Cluster types (distributed RF-controller).
type (
	// ClusterSpec sizes the distributed RF-controller: replica count, shard
	// policy and lease timings. The zero value (or Replicas ≤ 1) is the
	// paper's single rf-server.
	ClusterSpec = core.ClusterSpec
	// Replica is the public handle of one rf-controller replica.
	Replica = core.Replica
	// ShardPolicy names a shard→replica assignment policy.
	ShardPolicy = cluster.Policy
)

// ShardPolicyModulo assigns shard s to the (s mod n)-th live replica — the
// default static-partitioning policy.
const ShardPolicyModulo = cluster.PolicyModulo

// Option configures a Deployment built by New. Options compose left to
// right; later options override earlier ones.
type Option func(*Options)

// New assembles an automatic-configuration system for a topology; call
// Start on the returned deployment to run it.
//
//	d, err := routeflow.New(routeflow.Ring(4),
//	        routeflow.WithTimeScale(50),
//	        routeflow.WithHosts(0, 2),
//	        routeflow.WithReplicas(3))
//
// It is the functional-options form of NewDeployment: every Options field
// has a corresponding With* option, and new knobs (the cluster spec first
// among them) are added here without widening a struct literal.
func New(g *Topology, opts ...Option) (*Deployment, error) {
	o := Options{Topology: g}
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewDeployment(o)
}

// WithClock drives every timer from clk (see ScaledClock, SystemClock).
func WithClock(clk clock.Clock) Option { return func(o *Options) { o.Clock = clk } }

// WithTimeScale runs protocol time factor× faster than wall time — the
// ScaledClock shorthand used by every experiment.
func WithTimeScale(factor float64) Option {
	return func(o *Options) { o.Clock = ScaledClock(factor) }
}

// WithPool sets the administrator's IP range for the virtual environment
// (default 172.16.0.0/16).
func WithPool(p netip.Prefix) Option { return func(o *Options) { o.Pool = p } }

// WithHosts attaches an end host to each listed graph node.
func WithHosts(nodes ...int) Option { return func(o *Options) { o.HostNodes = nodes } }

// WithBootDelay models VM creation time.
func WithBootDelay(d time.Duration) Option { return func(o *Options) { o.BootDelay = d } }

// WithTimers sets the routing daemons' protocol timers.
func WithTimers(t Timers) Option { return func(o *Options) { o.Timers = t } }

// WithProbeInterval sets the LLDP discovery probe period.
func WithProbeInterval(d time.Duration) Option { return func(o *Options) { o.ProbeInterval = d } }

// WithLinkTTL sets how long a discovered link survives without a probe.
func WithLinkTTL(d time.Duration) Option { return func(o *Options) { o.LinkTTL = d } }

// WithoutFlowVisor runs the merged-controller ablation (no slicing proxy).
func WithoutFlowVisor() Option { return func(o *Options) { o.NoFlowVisor = true } }

// WithOnStatus observes per-switch configuration state (wire a Dashboard's
// Update here).
func WithOnStatus(fn func(dpid uint64, state VMState)) Option {
	return func(o *Options) { o.OnStatus = func(dpid uint64, st vnet.State) { fn(dpid, st) } }
}

// WithRPCDropRate injects reproducible control-channel loss: each RPC frame
// is dropped (and its connection cut) with probability rate, seeded for
// determinism.
func WithRPCDropRate(rate float64, seed int64) Option {
	return func(o *Options) { o.RPCDropRate = rate; o.RPCDropSeed = seed }
}

// WithRPCAttempts bounds the RPC client's short-horizon retries per send.
func WithRPCAttempts(n int) Option { return func(o *Options) { o.RPCAttempts = n } }

// WithReconcilerBackoff overrides the reconciler's first retry delay.
func WithReconcilerBackoff(d time.Duration) Option {
	return func(o *Options) { o.ReconcilerBackoff = d }
}

// WithResyncProbe overrides the reconciler's idle epoch-probe period.
func WithResyncProbe(d time.Duration) Option { return func(o *Options) { o.ResyncProbe = d } }

// WithCluster runs the distributed RF-controller: spec.Replicas instances
// with sharded per-switch ownership and lease-based failover.
func WithCluster(spec ClusterSpec) Option { return func(o *Options) { o.Cluster = spec } }

// WithReplicas is the WithCluster shorthand for "n replicas, default shard
// policy and lease timings".
func WithReplicas(n int) Option {
	return func(o *Options) { o.Cluster = ClusterSpec{Replicas: n} }
}

// WithRPCApplyDelay models the per-message work of the paper's RPC server
// (VM cloning, config-file writes) inside each replica's apply lock — the
// serialized cost that sharding the switch population divides.
func WithRPCApplyDelay(d time.Duration) Option { return func(o *Options) { o.RPCApplyDelay = d } }

// WithStatefulOffload enables each switch's XFSM-style local state machines
// (MAC learning + microflow pinning): steady traffic forwards inside the
// datapath without consulting the flow table, and a learned flow is never
// punted to the controller. Off by default, because offloaded packets
// bypass per-flow counters — the same visibility trade real hardware
// offload makes.
func WithStatefulOffload() Option { return func(o *Options) { o.StatefulOffload = true } }
